// The deduction-rule engine's contract is soundness: every interval it
// produces must contain the true support, for any rule depth and any
// (possibly partial) table of recorded subset supports. These tests check
// that property against brute-force supports on small randomized databases,
// plus the Kruskal-Katona candidate cap and the CombinedPruner combinator.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/transaction_database.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "mining/candidate_pruner.h"
#include "mining/deduction_rules.h"

namespace ossm {
namespace {

uint64_t BruteSupport(const TransactionDatabase& db,
                      std::span<const ItemId> items) {
  uint64_t support = 0;
  for (uint64_t t = 0; t < db.num_transactions(); ++t) {
    if (db.Contains(t, items)) ++support;
  }
  return support;
}

Itemset ItemsOfMask(uint32_t mask, uint32_t num_items) {
  Itemset items;
  for (uint32_t i = 0; i < num_items; ++i) {
    if (mask & (1u << i)) items.push_back(i);
  }
  return items;
}

TransactionDatabase SmallRandomDb(uint64_t seed) {
  SkewedConfig gen;
  gen.num_items = 8;
  gen.num_transactions = 60;
  gen.avg_transaction_size = 4.0;
  gen.in_season_boost = 6.0;
  gen.seed = seed;
  StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

TEST(GeertsCandidateCapTest, HandComputedValues) {
  // |L_1| = n frequent items can yield at most C(n, 2) pairs.
  EXPECT_EQ(GeertsCandidateCap(4, 1), 6u);
  EXPECT_EQ(GeertsCandidateCap(10, 1), 45u);
  // One frequent singleton cannot join with anything.
  EXPECT_EQ(GeertsCandidateCap(1, 1), 0u);
  // 3 = C(3,2) frequent pairs cap the triples at C(3,3) = 1.
  EXPECT_EQ(GeertsCandidateCap(3, 2), 1u);
  // 2 = C(2,2) + C(1,1) pairs: cap = C(2,3) + C(1,2) = 0.
  EXPECT_EQ(GeertsCandidateCap(2, 2), 0u);
  // 6 = C(4,2) pairs cap the triples at C(4,3) = 4.
  EXPECT_EQ(GeertsCandidateCap(6, 2), 4u);
  // 7 = C(4,2) + C(1,1): cap = C(4,3) + C(1,2) = 4.
  EXPECT_EQ(GeertsCandidateCap(7, 2), 4u);
  // 20 = C(6,3) triples cap the 4-sets at C(6,4) = 15.
  EXPECT_EQ(GeertsCandidateCap(20, 3), 15u);
  EXPECT_EQ(GeertsCandidateCap(0, 3), 0u);
}

TEST(GeertsCandidateCapTest, NeverBelowActualGeneration) {
  // In real Apriori runs, the candidates actually generated at level k+1
  // can never exceed the cap computed from |L_k| — the cap is exactly the
  // maximum size of a family of (k+1)-sets whose k-subsets all lie in a
  // |L_k|-sized collection.
  for (uint64_t seed : {3u, 11u, 29u}) {
    SkewedConfig gen;
    gen.num_items = 20;
    gen.num_transactions = 400;
    gen.avg_transaction_size = 6.0;
    gen.in_season_boost = 8.0;
    gen.seed = seed;
    StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
    ASSERT_TRUE(db.ok());

    AprioriConfig config;
    config.min_support_fraction = 0.03;
    StatusOr<MiningResult> result = MineApriori(*db, config);
    ASSERT_TRUE(result.ok());
    for (const LevelStats& level : result->stats.levels) {
      if (level.level == 1) continue;
      uint64_t prior_frequent = 0;
      for (const LevelStats& l : result->stats.levels) {
        if (l.level == level.level - 1) prior_frequent = l.frequent;
      }
      EXPECT_LE(level.candidates_generated,
                GeertsCandidateCap(prior_frequent, level.level - 1))
          << "level " << level.level << " seed " << seed;
    }
  }
}

TEST(DeductionRulesTest, EmptyItemsetIsPinnedToTheTotal) {
  DeductionRules rules(42, 0);
  SupportInterval interval = rules.Bounds({});
  EXPECT_EQ(interval.lower, 42u);
  EXPECT_EQ(interval.upper, 42u);
}

TEST(DeductionRulesTest, NothingRecordedMeansNoInformation) {
  DeductionRules rules(100, 0);
  Itemset pair = {1, 2};
  SupportInterval interval = rules.Bounds(pair);
  EXPECT_EQ(interval.lower, 0u);
  EXPECT_EQ(interval.upper, 100u);
}

// The core soundness property: with every proper-subset support recorded,
// the interval contains the true support at every depth, intervals nest as
// depth grows, and a point interval equals the true support exactly.
TEST(DeductionRulesTest, BoundsContainTrueSupportOnRandomDatabases) {
  for (uint64_t seed : {1u, 7u, 13u, 21u, 35u}) {
    TransactionDatabase db = SmallRandomDb(seed);
    const uint32_t num_items = db.num_items();
    const uint32_t num_masks = 1u << num_items;

    std::vector<uint64_t> support(num_masks, 0);
    for (uint32_t mask = 1; mask < num_masks; ++mask) {
      support[mask] = BruteSupport(db, ItemsOfMask(mask, num_items));
    }

    std::vector<DeductionRules> at_depth;
    for (uint32_t depth : {1u, 2u, 3u, 0u}) {
      at_depth.emplace_back(db.num_transactions(), depth);
    }
    for (DeductionRules& rules : at_depth) {
      for (uint32_t mask = 1; mask < num_masks; ++mask) {
        rules.Record(ItemsOfMask(mask, num_items), support[mask]);
      }
    }

    for (uint32_t mask = 1; mask < num_masks; ++mask) {
      Itemset items = ItemsOfMask(mask, num_items);
      SupportInterval previous{0, db.num_transactions()};
      for (DeductionRules& rules : at_depth) {
        SupportInterval interval = rules.Bounds(items);
        EXPECT_TRUE(interval.Contains(support[mask]))
            << "seed " << seed << " mask " << mask << " depth "
            << rules.max_depth() << ": [" << interval.lower << ", "
            << interval.upper << "] vs " << support[mask];
        // Deeper rule sets only ever tighten.
        EXPECT_GE(interval.lower, previous.lower);
        EXPECT_LE(interval.upper, previous.upper);
        if (interval.Exact()) {
          EXPECT_EQ(interval.lower, support[mask]);
        }
        previous = interval;
      }
    }
  }
}

// Partial tables must stay sound: a rule referencing any unrecorded subset
// is skipped, never guessed.
TEST(DeductionRulesTest, PartialSupportTablesStaySound) {
  for (uint64_t seed : {5u, 17u}) {
    TransactionDatabase db = SmallRandomDb(seed);
    const uint32_t num_items = db.num_items();
    const uint32_t num_masks = 1u << num_items;

    DeductionRules rules(db.num_transactions(), 0);
    // Record an arbitrary half of the subset lattice (every second mask).
    for (uint32_t mask = 1; mask < num_masks; mask += 2) {
      rules.Record(ItemsOfMask(mask, num_items),
                   BruteSupport(db, ItemsOfMask(mask, num_items)));
    }

    for (uint32_t mask = 1; mask < num_masks; ++mask) {
      Itemset items = ItemsOfMask(mask, num_items);
      SupportInterval interval = rules.Bounds(items);
      EXPECT_TRUE(interval.Contains(BruteSupport(db, items)))
          << "seed " << seed << " mask " << mask;
    }
  }
}

// A mirrored item (B present exactly where A is) makes {A, B, c} derivable:
// the rule dropping {B, c} gives lower = sup(Ac) + sup(AB) - sup(A) =
// sup(Ac), and the rule dropping {B} gives upper = sup(Ac).
TEST(DeductionRulesTest, MirroredItemsCollapseToAPoint) {
  TransactionDatabase db(3);  // A=0, B=1, c=2
  ASSERT_TRUE(db.Append({0, 1}).ok());
  ASSERT_TRUE(db.Append({0, 1, 2}).ok());
  ASSERT_TRUE(db.Append({2}).ok());

  DeductionRules rules(db.num_transactions(), 2);
  for (uint32_t mask = 1; mask < 8; ++mask) {
    Itemset items = ItemsOfMask(mask, 3);
    if (items.size() < 3) {
      rules.Record(items, BruteSupport(db, items));
    }
  }

  Itemset abc = {0, 1, 2};
  SupportInterval interval = rules.Bounds(abc);
  EXPECT_TRUE(interval.Exact());
  EXPECT_EQ(interval.lower, 1u);
}

// A fixed-bound fake for exercising the combinator without a real OSSM.
class FakePruner : public CandidatePruner {
 public:
  explicit FakePruner(uint64_t upper) : upper_(upper) {}
  std::string_view name() const override { return "fake"; }
  uint64_t UpperBound(std::span<const ItemId>) const override {
    return upper_;
  }

 private:
  uint64_t upper_;
};

TEST(CombinedPrunerTest, TakesTheMinOfBothUpperBounds) {
  FakePruner base(7);
  CombinedPruner combined(&base, 100, 0);
  Itemset pair = {0, 1};
  // Rules know nothing: the base bound wins.
  EXPECT_EQ(combined.UpperBound(pair), 7u);
  // Teach the rules sup(0) = 3: now the monotone rule is tighter.
  Itemset a = {0};
  combined.ObserveSupport(a, 3);
  EXPECT_EQ(combined.UpperBound(pair), 3u);
}

TEST(CombinedPrunerTest, AttributesRejectionsToTheDecisiveSource) {
  // Base bound alone below threshold -> attributed to the OSSM side.
  {
    FakePruner base(2);
    CombinedPruner combined(&base, 100, 0);
    Itemset pair = {0, 1};
    PruneOutcome outcome = combined.Evaluate(pair, 10);
    EXPECT_FALSE(outcome.admitted);
    EXPECT_EQ(outcome.eliminated_by, BoundSource::kOssm);
  }
  // Base bound passes but a deduction rule kills it -> the NDI side, which
  // makes eliminated_by_ndi the rules' marginal contribution.
  {
    FakePruner base(50);
    CombinedPruner combined(&base, 100, 0);
    Itemset a = {0};
    combined.ObserveSupport(a, 4);
    Itemset pair = {0, 1};
    PruneOutcome outcome = combined.Evaluate(pair, 10);
    EXPECT_FALSE(outcome.admitted);
    EXPECT_EQ(outcome.eliminated_by, BoundSource::kNdi);
  }
}

TEST(CombinedPrunerTest, DerivedCandidatesComeOutExact) {
  // Mirrored-pair database from above: {A, B, c} is derivable once the
  // pair supports are observed.
  CombinedPruner combined(nullptr, 3, 0);
  EXPECT_EQ(combined.name(), "NDI");
  TransactionDatabase db(3);
  ASSERT_TRUE(db.Append({0, 1}).ok());
  ASSERT_TRUE(db.Append({0, 1, 2}).ok());
  ASSERT_TRUE(db.Append({2}).ok());
  for (uint32_t mask = 1; mask < 8; ++mask) {
    Itemset items = ItemsOfMask(mask, 3);
    if (items.size() < 3) {
      combined.ObserveSupport(items, BruteSupport(db, items));
    }
  }

  Itemset abc = {0, 1, 2};
  PruneOutcome outcome = combined.Evaluate(abc, 1);
  EXPECT_TRUE(outcome.admitted);
  EXPECT_TRUE(outcome.interval.Exact());
  EXPECT_EQ(outcome.interval.lower, 1u);
}

TEST(CombinedPrunerTest, NullBaseForwardsNoSingletonSupports) {
  CombinedPruner combined(nullptr, 10, 3);
  EXPECT_TRUE(combined.ExactSingletonSupports().empty());
}

}  // namespace
}  // namespace ossm
