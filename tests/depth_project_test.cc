#include "mining/depth_project.h"

#include <gtest/gtest.h>

#include "core/ossm_builder.h"
#include "datagen/quest_generator.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "tests/mining_test_util.h"

namespace ossm {
namespace {

TEST(DepthProjectTest, TinyDatabaseByHand) {
  TransactionDatabase db = test::TinyDb();
  DepthProjectConfig config;
  config.min_support_count = 4;
  StatusOr<MiningResult> result = MineDepthProject(db, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<FrequentItemset> expected = {
      {{0}, 6}, {{1}, 6}, {{2}, 5}, {{0, 1}, 5}, {{0, 2}, 4}, {{1, 2}, 4},
  };
  EXPECT_EQ(result->itemsets, expected);
}

TEST(DepthProjectTest, MatchesBruteForceOnRandomData) {
  QuestConfig gen;
  gen.num_items = 12;
  gen.num_transactions = 400;
  gen.avg_transaction_size = 4;
  gen.avg_pattern_size = 3;
  gen.num_patterns = 5;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    gen.seed = seed;
    StatusOr<TransactionDatabase> db = GenerateQuest(gen);
    ASSERT_TRUE(db.ok());
    DepthProjectConfig config;
    config.min_support_count = 20;
    StatusOr<MiningResult> result = MineDepthProject(*db, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->itemsets, test::BruteForceFrequent(*db, 20))
        << "seed " << seed;
  }
}

TEST(DepthProjectTest, AgreesWithAprioriAcrossThresholds) {
  QuestConfig gen;
  gen.num_items = 30;
  gen.num_transactions = 1500;
  gen.avg_transaction_size = 6;
  gen.num_patterns = 8;
  gen.seed = 17;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());

  for (double threshold : {0.005, 0.02, 0.1}) {
    AprioriConfig apriori_config;
    apriori_config.min_support_fraction = threshold;
    DepthProjectConfig dp_config;
    dp_config.min_support_fraction = threshold;
    StatusOr<MiningResult> a = MineApriori(*db, apriori_config);
    StatusOr<MiningResult> d = MineDepthProject(*db, dp_config);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(a->SamePatternsAs(*d)) << "threshold " << threshold;
  }
}

TEST(DepthProjectTest, DeepPatternRecursion) {
  TransactionDatabase db(8);
  for (int r = 0; r < 10; ++r) {
    ASSERT_TRUE(db.Append({0, 1, 2, 3, 4, 5}).ok());
  }
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(db.Append({6, 7}).ok());
  }
  DepthProjectConfig config;
  config.min_support_count = 10;
  StatusOr<MiningResult> result = MineDepthProject(db, config);
  ASSERT_TRUE(result.ok());
  // All 2^6 - 1 subsets of the deep pattern.
  EXPECT_EQ(result->itemsets.size(), 63u);
}

TEST(DepthProjectTest, MaxLevelCapsDepth) {
  TransactionDatabase db(6);
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(db.Append({0, 1, 2, 3, 4, 5}).ok());
  }
  DepthProjectConfig config;
  config.min_support_count = 5;
  config.max_level = 3;
  StatusOr<MiningResult> result = MineDepthProject(db, config);
  ASSERT_TRUE(result.ok());
  // 6 singles + 15 pairs + 20 triples.
  EXPECT_EQ(result->itemsets.size(), 41u);
  for (const FrequentItemset& f : result->itemsets) {
    EXPECT_LE(f.items.size(), 3u);
  }
}

TEST(DepthProjectTest, OssmPrunesExtensionsLosslessly) {
  // The Section 7 integration: known-infrequent extensions never reach the
  // projection scan, and the mined patterns are unchanged.
  SkewedConfig gen;
  gen.num_items = 40;
  gen.num_transactions = 2000;
  gen.avg_transaction_size = 6;
  gen.in_season_boost = 8.0;
  gen.seed = 5;
  StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
  ASSERT_TRUE(db.ok());

  OssmBuildOptions build_options;
  build_options.algorithm = SegmentationAlgorithm::kGreedy;
  build_options.target_segments = 10;
  build_options.transactions_per_page = 50;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, build_options);
  ASSERT_TRUE(build.ok());
  OssmPruner pruner(&build->map);

  DepthProjectConfig without;
  without.min_support_fraction = 0.05;
  DepthProjectConfig with = without;
  with.pruner = &pruner;

  StatusOr<MiningResult> plain = MineDepthProject(*db, without);
  StatusOr<MiningResult> assisted = MineDepthProject(*db, with);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(assisted.ok());
  EXPECT_TRUE(plain->SamePatternsAs(*assisted));
  EXPECT_GT(assisted->stats.TotalPrunedByBound(), 0u);
  EXPECT_LT(assisted->stats.TotalCandidatesCounted(),
            plain->stats.TotalCandidatesCounted());
}

TEST(DepthProjectTest, EmptyResultAtImpossibleThreshold) {
  TransactionDatabase db = test::TinyDb();
  DepthProjectConfig config;
  config.min_support_count = 1000;
  StatusOr<MiningResult> result = MineDepthProject(db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->itemsets.empty());
}

TEST(DepthProjectTest, RejectsBadFraction) {
  TransactionDatabase db = test::TinyDb();
  DepthProjectConfig config;
  config.min_support_fraction = -1.0;
  EXPECT_EQ(MineDepthProject(db, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DepthProjectTest, LevelStatsAreCoherent) {
  TransactionDatabase db = test::TinyDb();
  DepthProjectConfig config;
  config.min_support_count = 4;
  StatusOr<MiningResult> result = MineDepthProject(db, config);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->stats.levels.size(), 2u);
  EXPECT_EQ(result->stats.levels[0].frequent, 3u);
  EXPECT_EQ(result->stats.levels[1].frequent, 3u);
  for (const LevelStats& l : result->stats.levels) {
    EXPECT_EQ(l.candidates_generated,
              l.candidates_counted + l.pruned_by_bound);
  }
}

}  // namespace
}  // namespace ossm
