#include "mining/dhp.h"

#include <gtest/gtest.h>

#include "core/ossm_builder.h"
#include "datagen/quest_generator.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "tests/mining_test_util.h"

namespace ossm {
namespace {

TEST(DhpTest, TinyDatabaseByHand) {
  TransactionDatabase db = test::TinyDb();
  DhpConfig config;
  config.min_support_count = 4;
  StatusOr<MiningResult> result = MineDhp(db, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<FrequentItemset> expected = {
      {{0}, 6}, {{1}, 6}, {{2}, 5}, {{0, 1}, 5}, {{0, 2}, 4}, {{1, 2}, 4},
  };
  EXPECT_EQ(result->itemsets, expected);
}

TEST(DhpTest, MatchesBruteForceOnRandomData) {
  QuestConfig gen;
  gen.num_items = 12;
  gen.num_transactions = 400;
  gen.avg_transaction_size = 4;
  gen.avg_pattern_size = 3;
  gen.num_patterns = 5;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    gen.seed = seed;
    StatusOr<TransactionDatabase> db = GenerateQuest(gen);
    ASSERT_TRUE(db.ok());
    DhpConfig config;
    config.min_support_count = 20;
    StatusOr<MiningResult> result = MineDhp(*db, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->itemsets, test::BruteForceFrequent(*db, 20))
        << "seed " << seed;
  }
}

TEST(DhpTest, AgreesWithAprioriAtEveryThreshold) {
  QuestConfig gen;
  gen.num_items = 30;
  gen.num_transactions = 1500;
  gen.avg_transaction_size = 6;
  gen.num_patterns = 8;
  gen.seed = 9;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());

  for (double threshold : {0.005, 0.01, 0.03, 0.1}) {
    AprioriConfig apriori_config;
    apriori_config.min_support_fraction = threshold;
    DhpConfig dhp_config;
    dhp_config.min_support_fraction = threshold;

    StatusOr<MiningResult> a = MineApriori(*db, apriori_config);
    StatusOr<MiningResult> d = MineDhp(*db, dhp_config);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(a->SamePatternsAs(*d)) << "threshold " << threshold;
  }
}

TEST(DhpTest, BucketFilterPrunesCandidates) {
  // With few buckets the filter is weak; with many it is strong. Either
  // way the patterns are unchanged and pruned_by_hash is recorded.
  QuestConfig gen;
  gen.num_items = 50;
  gen.num_transactions = 2000;
  gen.avg_transaction_size = 6;
  gen.num_patterns = 12;
  gen.seed = 11;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());

  DhpConfig small_config;
  small_config.min_support_fraction = 0.02;
  small_config.num_buckets = 64;
  DhpConfig large_config = small_config;
  large_config.num_buckets = 1 << 16;

  StatusOr<MiningResult> small = MineDhp(*db, small_config);
  StatusOr<MiningResult> large = MineDhp(*db, large_config);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_TRUE(small->SamePatternsAs(*large));

  uint64_t small_pruned = 0;
  uint64_t large_pruned = 0;
  for (const LevelStats& l : small->stats.levels) {
    small_pruned += l.pruned_by_hash;
  }
  for (const LevelStats& l : large->stats.levels) {
    large_pruned += l.pruned_by_hash;
  }
  EXPECT_GE(large_pruned, small_pruned);
  EXPECT_GT(large_pruned, 0u);
}

TEST(DhpTest, OssmComposesWithTheBucketFilter) {
  // The Section 7 experiment: DHP with an OSSM counts at most as many
  // candidate 2-itemsets as DHP alone, with identical output. Seasonal data
  // guarantees prunable cross-season pairs.
  SkewedConfig gen;
  gen.num_items = 60;
  gen.num_transactions = 3000;
  gen.avg_transaction_size = 7;
  gen.in_season_boost = 8.0;
  gen.seed = 13;
  StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
  ASSERT_TRUE(db.ok());

  OssmBuildOptions build_options;
  build_options.algorithm = SegmentationAlgorithm::kRandomRc;
  build_options.target_segments = 40;
  build_options.intermediate_segments = 60;
  build_options.transactions_per_page = 50;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, build_options);
  ASSERT_TRUE(build.ok());
  OssmPruner pruner(&build->map);

  DhpConfig without;
  without.min_support_fraction = 0.05;
  DhpConfig with = without;
  with.pruner = &pruner;

  StatusOr<MiningResult> plain = MineDhp(*db, without);
  StatusOr<MiningResult> assisted = MineDhp(*db, with);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(assisted.ok());
  EXPECT_TRUE(plain->SamePatternsAs(*assisted));
  EXPECT_LE(assisted->stats.CountedAtLevel(2),
            plain->stats.CountedAtLevel(2));
  uint64_t pruned_by_bound = assisted->stats.TotalPrunedByBound();
  EXPECT_GT(pruned_by_bound, 0u);
}

TEST(DhpTest, TrimmingDoesNotLosePatterns) {
  // Deep pattern: one frequent 4-itemset that must survive three rounds of
  // trimming.
  TransactionDatabase db(8);
  for (int r = 0; r < 10; ++r) {
    ASSERT_TRUE(db.Append({0, 1, 2, 3}).ok());
  }
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(db.Append({4, 5}).ok());
    ASSERT_TRUE(db.Append({6}).ok());
  }
  DhpConfig config;
  config.min_support_count = 10;
  StatusOr<MiningResult> result = MineDhp(db, config);
  ASSERT_TRUE(result.ok());
  Itemset deep = {0, 1, 2, 3};
  bool found = false;
  for (const FrequentItemset& f : result->itemsets) {
    if (f.items == deep) {
      found = true;
      EXPECT_EQ(f.support, 10u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(result->itemsets.size(), 15u);  // all non-empty subsets of it
}

TEST(DhpTest, RejectsZeroBuckets) {
  TransactionDatabase db = test::TinyDb();
  DhpConfig config;
  config.num_buckets = 0;
  EXPECT_EQ(MineDhp(db, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DhpTest, RejectsBadFraction) {
  TransactionDatabase db = test::TinyDb();
  DhpConfig config;
  config.min_support_fraction = -0.5;
  EXPECT_EQ(MineDhp(db, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DhpTest, MaxLevelRespected) {
  TransactionDatabase db = test::TinyDb();
  DhpConfig config;
  config.min_support_count = 3;
  config.max_level = 2;
  StatusOr<MiningResult> result = MineDhp(db, config);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& f : result->itemsets) {
    EXPECT_LE(f.items.size(), 2u);
  }
}

}  // namespace
}  // namespace ossm
