#include "mining/eclat.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ossm_builder.h"
#include "datagen/quest_generator.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "tests/mining_test_util.h"

namespace ossm {
namespace {

TEST(EclatTest, TinyDatabaseByHand) {
  TransactionDatabase db = test::TinyDb();
  EclatConfig config;
  config.min_support_count = 4;
  StatusOr<MiningResult> result = MineEclat(db, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<FrequentItemset> expected = {
      {{0}, 6}, {{1}, 6}, {{2}, 5}, {{0, 1}, 5}, {{0, 2}, 4}, {{1, 2}, 4},
  };
  EXPECT_EQ(result->itemsets, expected);
}

TEST(EclatTest, MatchesBruteForceOnRandomData) {
  QuestConfig gen;
  gen.num_items = 12;
  gen.num_transactions = 400;
  gen.avg_transaction_size = 4;
  gen.avg_pattern_size = 3;
  gen.num_patterns = 5;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    gen.seed = seed;
    StatusOr<TransactionDatabase> db = GenerateQuest(gen);
    ASSERT_TRUE(db.ok());
    EclatConfig config;
    config.min_support_count = 20;
    StatusOr<MiningResult> result = MineEclat(*db, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->itemsets, test::BruteForceFrequent(*db, 20))
        << "seed " << seed;
  }
}

TEST(EclatTest, AgreesWithAprioriAcrossThresholds) {
  QuestConfig gen;
  gen.num_items = 30;
  gen.num_transactions = 1500;
  gen.avg_transaction_size = 6;
  gen.num_patterns = 8;
  gen.seed = 19;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());

  for (double threshold : {0.005, 0.02, 0.1}) {
    AprioriConfig apriori_config;
    apriori_config.min_support_fraction = threshold;
    EclatConfig eclat_config;
    eclat_config.min_support_fraction = threshold;
    StatusOr<MiningResult> a = MineApriori(*db, apriori_config);
    StatusOr<MiningResult> e = MineEclat(*db, eclat_config);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(a->SamePatternsAs(*e)) << "threshold " << threshold;
  }
}

TEST(EclatTest, DeepChainPattern) {
  TransactionDatabase db(6);
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(db.Append({0, 1, 2, 3, 4, 5}).ok());
  }
  EclatConfig config;
  config.min_support_count = 5;
  StatusOr<MiningResult> result = MineEclat(db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->itemsets.size(), 63u);
}

TEST(EclatTest, MaxLevelCapsPatternLength) {
  TransactionDatabase db(6);
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(db.Append({0, 1, 2, 3, 4, 5}).ok());
  }
  EclatConfig config;
  config.min_support_count = 5;
  config.max_level = 2;
  StatusOr<MiningResult> result = MineEclat(db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->itemsets.size(), 21u);  // 6 singles + 15 pairs
}

TEST(EclatTest, OssmPrunesIntersectionsLosslessly) {
  SkewedConfig gen;
  gen.num_items = 40;
  gen.num_transactions = 2000;
  gen.avg_transaction_size = 6;
  gen.in_season_boost = 8.0;
  gen.seed = 7;
  StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
  ASSERT_TRUE(db.ok());

  OssmBuildOptions build_options;
  build_options.algorithm = SegmentationAlgorithm::kGreedy;
  build_options.target_segments = 10;
  build_options.transactions_per_page = 50;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, build_options);
  ASSERT_TRUE(build.ok());
  OssmPruner pruner(&build->map);

  EclatConfig without;
  without.min_support_fraction = 0.05;
  EclatConfig with = without;
  with.pruner = &pruner;

  StatusOr<MiningResult> plain = MineEclat(*db, without);
  StatusOr<MiningResult> assisted = MineEclat(*db, with);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(assisted.ok());
  EXPECT_TRUE(plain->SamePatternsAs(*assisted));
  EXPECT_GT(assisted->stats.TotalPrunedByBound(), 0u);
  // Fewer tid-list intersections actually performed.
  EXPECT_LT(assisted->stats.TotalCandidatesCounted(),
            plain->stats.TotalCandidatesCounted());
}

TEST(EclatTest, RejectsBadFraction) {
  TransactionDatabase db = test::TinyDb();
  EclatConfig config;
  config.min_support_fraction = 0.0;
  EXPECT_EQ(MineEclat(db, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EclatTest, SingleScanOnly) {
  TransactionDatabase db = test::TinyDb();
  EclatConfig config;
  config.min_support_count = 4;
  StatusOr<MiningResult> result = MineEclat(db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.database_scans, 1u);  // verticalization only
}

TEST(EclatTest, RepresentationsProduceIdenticalPatterns) {
  QuestConfig gen;
  gen.num_items = 30;
  gen.num_transactions = 1200;
  gen.avg_transaction_size = 6;
  gen.num_patterns = 8;
  gen.seed = 23;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());

  for (double threshold : {0.01, 0.05, 0.15}) {
    EclatConfig lists;
    lists.min_support_fraction = threshold;
    lists.representation = EclatRepresentation::kTidLists;
    EclatConfig bitmaps = lists;
    bitmaps.representation = EclatRepresentation::kBitmaps;
    StatusOr<MiningResult> l = MineEclat(*db, lists);
    StatusOr<MiningResult> m = MineEclat(*db, bitmaps);
    ASSERT_TRUE(l.ok());
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(l->itemsets, m->itemsets) << "threshold " << threshold;
    // Bitmap joins never abandon; list joins may.
    EXPECT_EQ(m->stats.TotalAbandonedJoins(), 0u);
  }
}

TEST(EclatTest, AutoRepresentationPicksByDensity) {
  // min_support * 64 >= num_transactions -> bitmaps; results must match
  // the explicitly forced representations either way.
  TransactionDatabase db = test::TinyDb();
  EclatConfig automatic;
  automatic.min_support_count = 2;  // 2 * 64 >= 10 transactions -> dense
  automatic.representation = EclatRepresentation::kAuto;
  EclatConfig forced = automatic;
  forced.representation = EclatRepresentation::kBitmaps;
  StatusOr<MiningResult> a = MineEclat(db, automatic);
  StatusOr<MiningResult> f = MineEclat(db, forced);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(a->itemsets, f->itemsets);
}

TEST(EclatTest, EarlyAbandonCutsJoinsLosslessly) {
  QuestConfig gen;
  gen.num_items = 16;  // BruteForceFrequent enumerates <= 16-item domains
  gen.num_transactions = 3000;
  gen.avg_transaction_size = 5;
  gen.num_patterns = 6;
  gen.seed = 31;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());

  // A high threshold makes most joins infrequent, so abandoned merges must
  // show up in the accounting while the result set stays exact.
  EclatConfig config;
  config.min_support_fraction = 0.08;
  config.representation = EclatRepresentation::kTidLists;
  StatusOr<MiningResult> result = MineEclat(*db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.TotalAbandonedJoins(), 0u);
  EXPECT_EQ(result->itemsets,
            test::BruteForceFrequent(
                *db, static_cast<uint64_t>(std::ceil(
                         0.08 * static_cast<double>(db->num_transactions())))));
}

}  // namespace
}  // namespace ossm
