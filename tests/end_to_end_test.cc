// Full-pipeline integration tests: generate -> persist -> paginate ->
// segment -> build OSSM -> mine with six different miners -> compare.

#include <gtest/gtest.h>

#include <string>

#include "core/generalized_ossm.h"
#include "core/ossm_builder.h"
#include "core/ossm_io.h"
#include "data/dataset_io.h"
#include "datagen/quest_generator.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "mining/candidate_pruner.h"
#include "mining/depth_project.h"
#include "mining/dhp.h"
#include "mining/eclat.h"
#include "mining/fp_growth.h"
#include "mining/partition.h"

namespace ossm {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(EndToEndTest, SixMinersOneAnswer) {
  QuestConfig gen;
  gen.num_items = 50;
  gen.num_transactions = 3000;
  gen.avg_transaction_size = 7;
  gen.avg_pattern_size = 3;
  gen.num_patterns = 12;
  gen.seed = 101;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());

  const double threshold = 0.01;

  AprioriConfig apriori_config;
  apriori_config.min_support_fraction = threshold;
  StatusOr<MiningResult> apriori = MineApriori(*db, apriori_config);
  ASSERT_TRUE(apriori.ok());

  DhpConfig dhp_config;
  dhp_config.min_support_fraction = threshold;
  StatusOr<MiningResult> dhp = MineDhp(*db, dhp_config);
  ASSERT_TRUE(dhp.ok());

  PartitionConfig partition_config;
  partition_config.min_support_fraction = threshold;
  partition_config.num_partitions = 5;
  StatusOr<MiningResult> partition = MinePartition(*db, partition_config);
  ASSERT_TRUE(partition.ok());

  FpGrowthConfig fp_config;
  fp_config.min_support_fraction = threshold;
  StatusOr<MiningResult> fp = MineFpGrowth(*db, fp_config);
  ASSERT_TRUE(fp.ok());

  EclatConfig eclat_config;
  eclat_config.min_support_fraction = threshold;
  StatusOr<MiningResult> eclat = MineEclat(*db, eclat_config);
  ASSERT_TRUE(eclat.ok());

  DepthProjectConfig dp_config;
  dp_config.min_support_fraction = threshold;
  StatusOr<MiningResult> dp = MineDepthProject(*db, dp_config);
  ASSERT_TRUE(dp.ok());

  EXPECT_FALSE(apriori->itemsets.empty());
  EXPECT_TRUE(apriori->SamePatternsAs(*dhp));
  EXPECT_TRUE(apriori->SamePatternsAs(*partition));
  EXPECT_TRUE(apriori->SamePatternsAs(*fp));
  EXPECT_TRUE(apriori->SamePatternsAs(*eclat));
  EXPECT_TRUE(apriori->SamePatternsAs(*dp));
}

TEST(EndToEndTest, PersistedArtifactsReproduceTheRun) {
  // Generate data, save both the dataset and the OSSM, reload both, and
  // verify the reloaded pair gives byte-identical mining results — the
  // compile-time/exploration-time split of Section 3.
  SkewedConfig gen;
  gen.num_items = 40;
  gen.num_transactions = 2000;
  gen.avg_transaction_size = 5;
  gen.seed = 55;
  StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
  ASSERT_TRUE(db.ok());

  OssmBuildOptions build_options;
  build_options.algorithm = SegmentationAlgorithm::kRandomGreedy;
  build_options.target_segments = 12;
  build_options.intermediate_segments = 30;
  build_options.transactions_per_page = 40;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, build_options);
  ASSERT_TRUE(build.ok());

  std::string db_path = TempPath("e2e.bin");
  std::string map_path = TempPath("e2e.ossm");
  ASSERT_TRUE(DatasetIo::SaveBinary(*db, db_path).ok());
  ASSERT_TRUE(OssmIo::Save(build->map, map_path).ok());

  StatusOr<TransactionDatabase> db2 = DatasetIo::LoadBinary(db_path);
  StatusOr<SegmentSupportMap> map2 = OssmIo::Load(map_path);
  ASSERT_TRUE(db2.ok());
  ASSERT_TRUE(map2.ok());

  OssmPruner pruner_live(&build->map);
  OssmPruner pruner_loaded(&*map2);

  AprioriConfig live;
  live.min_support_fraction = 0.02;
  live.pruner = &pruner_live;
  AprioriConfig loaded = live;
  loaded.pruner = &pruner_loaded;

  StatusOr<MiningResult> a = MineApriori(*db, live);
  StatusOr<MiningResult> b = MineApriori(*db2, loaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->SamePatternsAs(*b));
}

TEST(EndToEndTest, GeneralizedOssmPrunesAtLeastAsWellEndToEnd) {
  QuestConfig gen;
  gen.num_items = 40;
  gen.num_transactions = 2500;
  gen.avg_transaction_size = 6;
  gen.num_patterns = 10;
  gen.seed = 202;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());

  OssmBuildOptions build_options;
  build_options.algorithm = SegmentationAlgorithm::kRc;
  build_options.target_segments = 8;
  build_options.transactions_per_page = 40;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, build_options);
  ASSERT_TRUE(build.ok());

  StatusOr<GeneralizedOssm> generalized = GeneralizedOssm::Build(
      *db, build->map, build->layout, build->page_to_segment, 20);
  ASSERT_TRUE(generalized.ok());

  OssmPruner base_pruner(&build->map);
  GeneralizedOssmPruner generalized_pruner(&*generalized);

  AprioriConfig no_pruner;
  no_pruner.min_support_fraction = 0.015;
  AprioriConfig base = no_pruner;
  base.pruner = &base_pruner;
  AprioriConfig extended = no_pruner;
  extended.pruner = &generalized_pruner;

  StatusOr<MiningResult> plain = MineApriori(*db, no_pruner);
  StatusOr<MiningResult> with_base = MineApriori(*db, base);
  StatusOr<MiningResult> with_pairs = MineApriori(*db, extended);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(with_base.ok());
  ASSERT_TRUE(with_pairs.ok());

  EXPECT_TRUE(plain->SamePatternsAs(*with_base));
  EXPECT_TRUE(plain->SamePatternsAs(*with_pairs));
  // Pair-augmentation can only tighten bounds -> at most as many counted.
  EXPECT_LE(with_pairs->stats.TotalCandidatesCounted(),
            with_base->stats.TotalCandidatesCounted());
}

TEST(EndToEndTest, TextDatasetPipelineAgrees) {
  // Save as FIMI text (the public-dataset interchange format), reload, and
  // verify mining parity — exercising the path a downstream user with a
  // real FIMI file would take.
  QuestConfig gen;
  gen.num_items = 25;
  gen.num_transactions = 800;
  gen.avg_transaction_size = 5;
  gen.num_patterns = 6;
  gen.seed = 303;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());

  std::string path = TempPath("fimi.txt");
  ASSERT_TRUE(DatasetIo::SaveText(*db, path).ok());
  StatusOr<TransactionDatabase> reloaded =
      DatasetIo::LoadText(path, db->num_items());
  ASSERT_TRUE(reloaded.ok());

  AprioriConfig config;
  config.min_support_fraction = 0.02;
  StatusOr<MiningResult> a = MineApriori(*db, config);
  StatusOr<MiningResult> b = MineApriori(*reloaded, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->SamePatternsAs(*b));
}

TEST(EndToEndTest, RecommendedRecipeWorksOutOfTheBox) {
  // Drive the Figure 7 recipe end to end on the scenario it is written
  // for: many pages, segmentation cost matters, seasonal data.
  SkewedConfig gen;
  gen.num_items = 30;
  gen.num_transactions = 4000;
  gen.avg_transaction_size = 5;
  gen.in_season_boost = 12.0;
  gen.seed = 404;
  StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
  ASSERT_TRUE(db.ok());

  SegmentationAlgorithm algorithm = RecommendStrategy(
      /*large_target_and_skewed=*/false,
      /*segmentation_cost_an_issue=*/true,
      /*very_many_pages=*/true);
  EXPECT_EQ(algorithm, SegmentationAlgorithm::kRandomRc);

  OssmBuildOptions build_options;
  build_options.algorithm = algorithm;
  build_options.target_segments = 10;
  build_options.intermediate_segments = 40;
  build_options.transactions_per_page = 20;  // 200 pages
  build_options.bubble_fraction = 0.3;
  build_options.bubble_threshold = 0.1;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, build_options);
  ASSERT_TRUE(build.ok());
  OssmPruner pruner(&build->map);

  AprioriConfig with;
  with.min_support_fraction = 0.1;
  with.pruner = &pruner;
  AprioriConfig without;
  without.min_support_fraction = 0.1;

  StatusOr<MiningResult> a = MineApriori(*db, without);
  StatusOr<MiningResult> b = MineApriori(*db, with);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->SamePatternsAs(*b));
  EXPECT_GT(b->stats.TotalPrunedByBound(), 0u);
}

}  // namespace
}  // namespace ossm
