#include "mining/episode.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/ossm_builder.h"
#include "mining/candidate_pruner.h"

namespace ossm {
namespace {

std::vector<Event> SimpleSequence() {
  // Types: 0 = A, 1 = B, 2 = C. A and B recur together; C is sporadic.
  std::vector<Event> events;
  for (uint64_t t = 0; t < 100; t += 10) {
    events.push_back({0, t});
    events.push_back({1, t + 1});
  }
  events.push_back({2, 55});
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });
  return events;
}

TEST(WindowedDatabaseTest, WindowCountAndContents) {
  std::vector<Event> events = {{0, 0}, {1, 2}, {2, 4}};
  StatusOr<TransactionDatabase> db = WindowedDatabase(events, 3, 3);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Window starts 0..4 inclusive -> 5 transactions.
  ASSERT_EQ(db->num_transactions(), 5u);
  // Window [0,3): events at 0 and 2 -> {0, 1}.
  EXPECT_EQ(db->transaction(0).size(), 2u);
  // Window [2,5): events at 2 and 4 -> {1, 2}.
  std::span<const ItemId> w2 = db->transaction(2);
  ASSERT_EQ(w2.size(), 2u);
  EXPECT_EQ(w2[0], 1u);
  EXPECT_EQ(w2[1], 2u);
  // Window [4,7): only the event at 4.
  EXPECT_EQ(db->transaction(4).size(), 1u);
}

TEST(WindowedDatabaseTest, DuplicateTypesCollapse) {
  std::vector<Event> events = {{1, 0}, {1, 1}, {1, 2}};
  StatusOr<TransactionDatabase> db = WindowedDatabase(events, 2, 5);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->transaction(0).size(), 1u);  // {1}, not {1,1,1}
}

TEST(WindowedDatabaseTest, RejectsEmptyAndUnordered) {
  std::vector<Event> none;
  EXPECT_EQ(WindowedDatabase(none, 3, 3).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<Event> unordered = {{0, 5}, {1, 3}};
  EXPECT_EQ(WindowedDatabase(unordered, 3, 3).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<Event> fine = {{0, 0}};
  EXPECT_EQ(WindowedDatabase(fine, 3, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WindowedDatabase(fine, 0, 3).status().code(),
            StatusCode::kInvalidArgument);  // type 0 out of empty domain
}

TEST(EpisodeTest, FindsTheRecurringPair) {
  EpisodeConfig config;
  config.window_width = 4;
  config.min_frequency = 0.2;
  StatusOr<EpisodeResult> result =
      MineParallelEpisodes(SimpleSequence(), 3, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  bool found_ab = false;
  for (const FrequentItemset& e : result->episodes) {
    if (e.items == Itemset{0, 1}) found_ab = true;
    // C occurs once; it can never reach a 20% window frequency.
    EXPECT_TRUE(std::find(e.items.begin(), e.items.end(), 2) ==
                e.items.end());
  }
  EXPECT_TRUE(found_ab);
  EXPECT_GT(result->num_windows, 0u);
}

TEST(EpisodeTest, EpisodeFrequencyMatchesManualWindowCount) {
  std::vector<Event> events = SimpleSequence();
  EpisodeConfig config;
  config.window_width = 4;
  config.min_frequency = 0.05;
  StatusOr<EpisodeResult> result = MineParallelEpisodes(events, 3, config);
  ASSERT_TRUE(result.ok());

  // Manual count for {A, B}: windows [t, t+4) containing both an A and a B.
  StatusOr<TransactionDatabase> windows = WindowedDatabase(events, 3, 4);
  ASSERT_TRUE(windows.ok());
  Itemset ab = {0, 1};
  uint64_t manual = 0;
  for (uint64_t w = 0; w < windows->num_transactions(); ++w) {
    if (windows->Contains(w, ab)) ++manual;
  }
  for (const FrequentItemset& e : result->episodes) {
    if (e.items == ab) {
      EXPECT_EQ(e.support, manual);
    }
  }
}

TEST(EpisodeTest, OssmPrunesEpisodeCandidatesLosslessly) {
  // The generality claim: an OSSM built over the windowed database prunes
  // candidate episodes exactly as it prunes candidate itemsets.
  Rng rng(11);
  std::vector<Event> events;
  // Two alternating "regimes" of alarm activity over 60 types.
  for (uint64_t t = 0; t < 20000; ++t) {
    uint32_t regime = (t / 5000) % 2;
    for (int k = 0; k < 2; ++k) {
      ItemId type = static_cast<ItemId>(rng.UniformInt(30) + regime * 30);
      events.push_back({type, t});
    }
  }

  StatusOr<TransactionDatabase> windows = WindowedDatabase(events, 60, 8);
  ASSERT_TRUE(windows.ok());
  OssmBuildOptions build_options;
  build_options.algorithm = SegmentationAlgorithm::kGreedy;
  build_options.target_segments = 12;
  build_options.transactions_per_page = 500;
  StatusOr<OssmBuildResult> build = BuildOssm(*windows, build_options);
  ASSERT_TRUE(build.ok());
  OssmPruner pruner(&build->map);

  EpisodeConfig without;
  without.window_width = 8;
  without.min_frequency = 0.2;
  EpisodeConfig with = without;
  with.pruner = &pruner;

  StatusOr<EpisodeResult> plain = MineParallelEpisodes(events, 60, without);
  StatusOr<EpisodeResult> assisted = MineParallelEpisodes(events, 60, with);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(assisted.ok());
  ASSERT_EQ(plain->episodes.size(), assisted->episodes.size());
  for (size_t i = 0; i < plain->episodes.size(); ++i) {
    EXPECT_EQ(plain->episodes[i], assisted->episodes[i]);
  }
  // Cross-regime episode candidates must have been pruned by the bound.
  EXPECT_GT(assisted->stats.TotalPrunedByBound(), 0u);
}

TEST(EpisodeTest, MaxEpisodeSizeRespected) {
  EpisodeConfig config;
  config.window_width = 4;
  config.min_frequency = 0.05;
  config.max_episode_size = 1;
  StatusOr<EpisodeResult> result =
      MineParallelEpisodes(SimpleSequence(), 3, config);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& e : result->episodes) {
    EXPECT_EQ(e.items.size(), 1u);
  }
}

}  // namespace
}  // namespace ossm
