#include "mining/fp_growth.h"

#include <gtest/gtest.h>

#include "datagen/alarm_generator.h"
#include "datagen/quest_generator.h"
#include "mining/apriori.h"
#include "tests/mining_test_util.h"

namespace ossm {
namespace {

TEST(FpGrowthTest, TinyDatabaseByHand) {
  TransactionDatabase db = test::TinyDb();
  FpGrowthConfig config;
  config.min_support_count = 4;
  StatusOr<MiningResult> result = MineFpGrowth(db, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<FrequentItemset> expected = {
      {{0}, 6}, {{1}, 6}, {{2}, 5}, {{0, 1}, 5}, {{0, 2}, 4}, {{1, 2}, 4},
  };
  EXPECT_EQ(result->itemsets, expected);
}

TEST(FpGrowthTest, MatchesBruteForceOnRandomData) {
  QuestConfig gen;
  gen.num_items = 12;
  gen.num_transactions = 500;
  gen.avg_transaction_size = 4;
  gen.num_patterns = 5;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    gen.seed = seed;
    StatusOr<TransactionDatabase> db = GenerateQuest(gen);
    ASSERT_TRUE(db.ok());
    FpGrowthConfig config;
    config.min_support_count = 25;
    StatusOr<MiningResult> result = MineFpGrowth(*db, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->itemsets, test::BruteForceFrequent(*db, 25))
        << "seed " << seed;
  }
}

TEST(FpGrowthTest, AgreesWithAprioriOnAlarmData) {
  AlarmConfig gen;
  gen.num_alarm_types = 60;
  gen.num_windows = 1500;
  gen.seed = 31;
  StatusOr<TransactionDatabase> db = GenerateAlarms(gen);
  ASSERT_TRUE(db.ok());

  for (double threshold : {0.01, 0.05}) {
    AprioriConfig apriori_config;
    apriori_config.min_support_fraction = threshold;
    FpGrowthConfig fp_config;
    fp_config.min_support_fraction = threshold;
    StatusOr<MiningResult> a = MineApriori(*db, apriori_config);
    StatusOr<MiningResult> f = MineFpGrowth(*db, fp_config);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(f.ok());
    EXPECT_TRUE(a->SamePatternsAs(*f)) << "threshold " << threshold;
  }
}

TEST(FpGrowthTest, DeepChainPattern) {
  // A long single path in the FP-tree: all 2^6 - 1 subsets of a 6-itemset.
  TransactionDatabase db(6);
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(db.Append({0, 1, 2, 3, 4, 5}).ok());
  }
  FpGrowthConfig config;
  config.min_support_count = 5;
  StatusOr<MiningResult> result = MineFpGrowth(db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->itemsets.size(), 63u);
  for (const FrequentItemset& f : result->itemsets) {
    EXPECT_EQ(f.support, 5u);
  }
}

TEST(FpGrowthTest, MaxLevelCapsPatternLength) {
  TransactionDatabase db(6);
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(db.Append({0, 1, 2, 3, 4, 5}).ok());
  }
  FpGrowthConfig config;
  config.min_support_count = 5;
  config.max_level = 2;
  StatusOr<MiningResult> result = MineFpGrowth(db, config);
  ASSERT_TRUE(result.ok());
  // 6 singletons + 15 pairs.
  EXPECT_EQ(result->itemsets.size(), 21u);
  for (const FrequentItemset& f : result->itemsets) {
    EXPECT_LE(f.items.size(), 2u);
  }
}

TEST(FpGrowthTest, TwoScansOnly) {
  TransactionDatabase db = test::TinyDb();
  FpGrowthConfig config;
  config.min_support_count = 4;
  StatusOr<MiningResult> result = MineFpGrowth(db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.database_scans, 2u);
}

TEST(FpGrowthTest, EmptyResultAtImpossibleThreshold) {
  TransactionDatabase db = test::TinyDb();
  FpGrowthConfig config;
  config.min_support_count = 1000;
  StatusOr<MiningResult> result = MineFpGrowth(db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->itemsets.empty());
}

TEST(FpGrowthTest, RejectsBadFraction) {
  TransactionDatabase db = test::TinyDb();
  FpGrowthConfig config;
  config.min_support_fraction = 0.0;
  EXPECT_EQ(MineFpGrowth(db, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FpGrowthTest, TieHeavySupportsStillCorrect) {
  // All items equally frequent: rank ordering is pure tie-breaking, a
  // regime that often exposes header-table bugs.
  TransactionDatabase db(4);
  ASSERT_TRUE(db.Append({0, 1}).ok());
  ASSERT_TRUE(db.Append({1, 2}).ok());
  ASSERT_TRUE(db.Append({2, 3}).ok());
  ASSERT_TRUE(db.Append({0, 3}).ok());
  ASSERT_TRUE(db.Append({0, 1, 2, 3}).ok());
  FpGrowthConfig config;
  config.min_support_count = 2;
  StatusOr<MiningResult> result = MineFpGrowth(db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->itemsets, test::BruteForceFrequent(db, 2));
}

}  // namespace
}  // namespace ossm
