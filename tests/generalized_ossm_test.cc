#include "core/generalized_ossm.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/ossm_builder.h"
#include "datagen/quest_generator.h"

namespace ossm {
namespace {

struct GeneralizedFixture {
  TransactionDatabase db;
  OssmBuildResult build;
};

GeneralizedFixture MakeSetup(uint64_t seed = 1, uint64_t target_segments = 6) {
  QuestConfig config;
  config.num_items = 30;
  config.num_transactions = 2000;
  config.avg_transaction_size = 5;
  config.avg_pattern_size = 3;
  config.num_patterns = 8;
  config.seed = seed;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  EXPECT_TRUE(db.ok());

  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandom;
  options.target_segments = target_segments;
  options.transactions_per_page = 50;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, options);
  EXPECT_TRUE(build.ok());
  return GeneralizedFixture{std::move(db).value(), std::move(build).value()};
}

uint64_t TrueSupport(const TransactionDatabase& db, const Itemset& items) {
  uint64_t count = 0;
  for (uint64_t t = 0; t < db.num_transactions(); ++t) {
    if (db.Contains(t, items)) ++count;
  }
  return count;
}

TEST(GeneralizedOssmTest, BuildSucceeds) {
  GeneralizedFixture s = MakeSetup();
  StatusOr<GeneralizedOssm> g =
      GeneralizedOssm::Build(s.db, s.build.map, s.build.layout,
                             s.build.page_to_segment, 10);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->tracked_items(), 10u);
  EXPECT_GT(g->MemoryFootprintBytes(), s.build.map.MemoryFootprintBytes());
}

TEST(GeneralizedOssmTest, TrackedPairSupportsAreExact) {
  GeneralizedFixture s = MakeSetup(2);
  StatusOr<GeneralizedOssm> g =
      GeneralizedOssm::Build(s.db, s.build.map, s.build.layout,
                             s.build.page_to_segment, 8);
  ASSERT_TRUE(g.ok());

  // The 8 globally hottest items are tracked; every pair among them must
  // report its exact support.
  std::vector<ItemId> hottest;
  {
    std::vector<std::pair<uint64_t, ItemId>> ranked;
    for (ItemId i = 0; i < s.db.num_items(); ++i) {
      ranked.emplace_back(s.build.map.Support(i), i);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (int k = 0; k < 8; ++k) hottest.push_back(ranked[k].second);
  }
  for (size_t i = 0; i < hottest.size(); ++i) {
    for (size_t j = i + 1; j < hottest.size(); ++j) {
      ItemId a = std::min(hottest[i], hottest[j]);
      ItemId b = std::max(hottest[i], hottest[j]);
      Itemset pair = {a, b};
      EXPECT_EQ(g->PairSupport(a, b), TrueSupport(s.db, pair));
      // And the generalized bound on a tracked pair is exact too.
      EXPECT_EQ(g->UpperBound(pair), TrueSupport(s.db, pair));
    }
  }
}

TEST(GeneralizedOssmTest, UntrackedPairReportsUnknown) {
  GeneralizedFixture s = MakeSetup(3);
  StatusOr<GeneralizedOssm> g =
      GeneralizedOssm::Build(s.db, s.build.map, s.build.layout,
                             s.build.page_to_segment, 4);
  ASSERT_TRUE(g.ok());
  // Find the globally coldest pair — certainly untracked with only 4 slots.
  ItemId coldest = 0;
  for (ItemId i = 1; i < s.db.num_items(); ++i) {
    if (s.build.map.Support(i) < s.build.map.Support(coldest)) coldest = i;
  }
  ItemId other = (coldest + 1) % s.db.num_items();
  // Only assert when genuinely untracked (the coldest item never is).
  EXPECT_EQ(g->PairSupport(coldest, other), UINT64_MAX);
}

TEST(GeneralizedOssmTest, BoundNeverLooserThanBaseNeverBelowTruth) {
  GeneralizedFixture s = MakeSetup(4);
  StatusOr<GeneralizedOssm> g =
      GeneralizedOssm::Build(s.db, s.build.map, s.build.layout,
                             s.build.page_to_segment, 12);
  ASSERT_TRUE(g.ok());

  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    size_t size = 2 + rng.UniformInt(3);
    Itemset items;
    while (items.size() < size) {
      ItemId item = static_cast<ItemId>(rng.UniformInt(s.db.num_items()));
      if (std::find(items.begin(), items.end(), item) == items.end()) {
        items.push_back(item);
      }
    }
    std::sort(items.begin(), items.end());

    uint64_t truth = TrueSupport(s.db, items);
    uint64_t generalized = g->UpperBound(items);
    uint64_t base = s.build.map.UpperBound(items);
    EXPECT_GE(generalized, truth) << "trial " << trial;
    EXPECT_LE(generalized, base) << "trial " << trial;
  }
}

TEST(GeneralizedOssmTest, PairsTightenTheBoundSomewhere) {
  // On correlated data the pair-augmented bound must beat the singleton
  // bound for at least one candidate pair.
  GeneralizedFixture s = MakeSetup(5);
  StatusOr<GeneralizedOssm> g =
      GeneralizedOssm::Build(s.db, s.build.map, s.build.layout,
                             s.build.page_to_segment, 15);
  ASSERT_TRUE(g.ok());

  bool improved = false;
  for (ItemId a = 0; a < s.db.num_items() && !improved; ++a) {
    for (ItemId b = a + 1; b < s.db.num_items() && !improved; ++b) {
      for (ItemId c = b + 1; c < s.db.num_items() && !improved; ++c) {
        Itemset triple = {a, b, c};
        if (g->UpperBound(triple) < s.build.map.UpperBound(triple)) {
          improved = true;
        }
      }
    }
  }
  EXPECT_TRUE(improved);
}

TEST(GeneralizedOssmTest, RejectsBadTrackedCount) {
  GeneralizedFixture s = MakeSetup(6);
  EXPECT_EQ(GeneralizedOssm::Build(s.db, s.build.map, s.build.layout,
                                   s.build.page_to_segment, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GeneralizedOssm::Build(s.db, s.build.map, s.build.layout,
                                   s.build.page_to_segment,
                                   s.db.num_items() + 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(GeneralizedOssmTest, RejectsMismatchedAssignment) {
  GeneralizedFixture s = MakeSetup(7);
  std::vector<uint32_t> wrong_size(s.build.layout.num_pages() + 3, 0);
  EXPECT_EQ(GeneralizedOssm::Build(s.db, s.build.map, s.build.layout,
                                   wrong_size, 5)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  std::vector<uint32_t> bad_segment = s.build.page_to_segment;
  bad_segment[0] = s.build.map.num_segments() + 10;
  EXPECT_EQ(GeneralizedOssm::Build(s.db, s.build.map, s.build.layout,
                                   bad_segment, 5)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ossm
