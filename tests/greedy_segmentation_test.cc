#include "core/greedy_segmentation.h"

#include <gtest/gtest.h>

#include "core/random_segmentation.h"
#include "core/rc_segmentation.h"
#include "parallel/thread_pool.h"
#include "tests/segmentation_test_util.h"

namespace ossm {
namespace {

TEST(GreedySegmentationTest, ReachesTargetCount) {
  GreedySegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 6;
  SegmentationStats stats;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(test::RandomSegments(1, 30, 8), options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 6u);
  // At least the initial all-pairs table was evaluated.
  EXPECT_GE(stats.ossub_evaluations, 30u * 29u / 2u);
}

TEST(GreedySegmentationTest, PreservesTotalsAndPages) {
  std::vector<Segment> input = test::RandomSegments(2, 25, 5);
  std::vector<uint64_t> totals = test::TotalCounts(input);
  GreedySegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 4;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(std::move(input), options, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(test::TotalCounts(*result), totals);
  EXPECT_EQ(test::CollectPages(*result).size(), 25u);
}

TEST(GreedySegmentationTest, ZeroLossMergesComeFirst) {
  // Greedy always takes the global minimum, so as long as any zero-loss pair
  // exists it never performs a lossy merge. Families of scaled segments
  // collapse perfectly regardless of interleaving.
  std::vector<Segment> input;
  uint32_t page = 0;
  for (uint64_t scale : {1, 3, 7}) {
    Segment family_a;
    family_a.counts = {10 * scale, 5 * scale, 1 * scale};
    family_a.pages = {page++};
    input.push_back(std::move(family_a));
    Segment family_b;
    family_b.counts = {1 * scale, 5 * scale, 10 * scale};
    family_b.pages = {page++};
    input.push_back(std::move(family_b));
  }

  GreedySegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 2;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(std::move(input), options, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  // Each output segment holds one family: pages {0,2,4} and {1,3,5}.
  for (const Segment& seg : *result) {
    std::vector<uint32_t> pages = seg.pages;
    std::sort(pages.begin(), pages.end());
    bool family_a = pages == std::vector<uint32_t>{0, 2, 4};
    bool family_b = pages == std::vector<uint32_t>{1, 3, 5};
    EXPECT_TRUE(family_a || family_b);
  }
  EXPECT_EQ(test::TotalPairwiseOssub(*result) > 0, true);
}

TEST(GreedySegmentationTest, NeverWorseThanRcOrRandomHere) {
  // Merging two segments raises the objective (the summed pair bound,
  // TotalPairBound) by exactly their pairwise ossub, and Greedy picks the
  // global minimum at every step. Summed over seeds, the Figure 4 quality
  // ranking Greedy <= RC <= Random must hold.
  uint64_t greedy_total = 0;
  uint64_t rc_total = 0;
  uint64_t random_total = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    SegmentationOptions options;
    options.target_segments = 5;
    options.seed = seed;

    GreedySegmenter greedy;
    StatusOr<std::vector<Segment>> g =
        greedy.Run(test::RandomSegments(seed + 30, 24, 8), options, nullptr);
    ASSERT_TRUE(g.ok());
    greedy_total += test::TotalPairBound(*g);

    RcSegmenter rc;
    StatusOr<std::vector<Segment>> r =
        rc.Run(test::RandomSegments(seed + 30, 24, 8), options, nullptr);
    ASSERT_TRUE(r.ok());
    rc_total += test::TotalPairBound(*r);

    RandomSegmenter random;
    StatusOr<std::vector<Segment>> n =
        random.Run(test::RandomSegments(seed + 30, 24, 8), options, nullptr);
    ASSERT_TRUE(n.ok());
    random_total += test::TotalPairBound(*n);
  }
  EXPECT_LE(greedy_total, random_total);
  EXPECT_LE(greedy_total, rc_total + rc_total / 20);  // allow heuristic noise
}

TEST(GreedySegmentationTest, DeterministicRegardlessOfSeed) {
  // Greedy has no randomness: the seed must not matter.
  SegmentationOptions options_a;
  options_a.target_segments = 4;
  options_a.seed = 1;
  SegmentationOptions options_b = options_a;
  options_b.seed = 999;

  GreedySegmenter segmenter;
  StatusOr<std::vector<Segment>> a =
      segmenter.Run(test::RandomSegments(8, 20, 6), options_a, nullptr);
  StatusOr<std::vector<Segment>> b =
      segmenter.Run(test::RandomSegments(8, 20, 6), options_b, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t s = 0; s < a->size(); ++s) {
    EXPECT_EQ((*a)[s].counts, (*b)[s].counts);
  }
}

TEST(GreedySegmentationTest, SingleTargetMergesEverything) {
  GreedySegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 1;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(test::RandomSegments(5, 12, 4), options, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].pages.size(), 12u);
}

TEST(GreedySegmentationTest, NoOpWhenAlreadySmallEnough) {
  GreedySegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 15;
  SegmentationStats stats;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(test::RandomSegments(6, 10, 4), options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10u);
}

TEST(GreedySegmentationTest, BubbleListChangesDecisions) {
  // Full-ossub Greedy and bubble-restricted Greedy should generally produce
  // different partitions when off-bubble items dominate the loss.
  std::vector<Segment> input = test::RandomSegments(9, 16, 8, 1000);
  std::vector<Segment> input_copy = input;

  GreedySegmenter segmenter;
  SegmentationOptions full;
  full.target_segments = 4;
  SegmentationOptions bubbled = full;
  bubbled.bubble = {0, 1};

  StatusOr<std::vector<Segment>> a =
      segmenter.Run(std::move(input), full, nullptr);
  StatusOr<std::vector<Segment>> b =
      segmenter.Run(std::move(input_copy), bubbled, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool differ = false;
  for (size_t s = 0; s < a->size(); ++s) {
    if ((*a)[s].counts != (*b)[s].counts) differ = true;
  }
  EXPECT_TRUE(differ);
}

// Straight-line reference for GreedySegmenter: same merge rule, same
// tie-break (loss, then oriented segment ids), but no heap, no lazy
// deletion, no compaction — every step rescans the exact live-pair table.
// Entries keep the orientation the real algorithm uses: initial pairs are
// (a < b); after a merge into `a`, refreshed pairs are (a, other).
std::vector<Segment> ReferenceGreedy(std::vector<Segment> segments,
                                     uint64_t target) {
  struct Entry {
    uint64_t loss;
    uint32_t a;
    uint32_t b;
  };
  auto less = [](const Entry& x, const Entry& y) {
    if (x.loss != y.loss) return x.loss < y.loss;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  };
  uint32_t n = static_cast<uint32_t>(segments.size());
  std::vector<char> dead(n, 0);
  std::vector<Entry> entries;
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a + 1; b < n; ++b) {
      entries.push_back({PairwiseOssub(segments[a], segments[b]), a, b});
    }
  }
  size_t alive = n;
  while (alive > target) {
    const Entry* best = &entries[0];
    for (const Entry& entry : entries) {
      if (less(entry, *best)) best = &entry;
    }
    uint32_t a = best->a, b = best->b;
    MergeSegmentInto(segments[a], std::move(segments[b]));
    dead[b] = 1;
    --alive;
    std::vector<Entry> next;
    for (const Entry& entry : entries) {
      if (entry.a != a && entry.a != b && entry.b != a && entry.b != b) {
        next.push_back(entry);
      }
    }
    for (uint32_t other = 0; other < n; ++other) {
      if (dead[other] || other == a) continue;
      next.push_back({PairwiseOssub(segments[a], segments[other]), a, other});
    }
    entries = std::move(next);
  }
  std::vector<Segment> result;
  for (uint32_t s = 0; s < n; ++s) {
    if (!dead[s]) result.push_back(std::move(segments[s]));
  }
  return result;
}

void ExpectSameSegments(const std::vector<Segment>& expected,
                        const std::vector<Segment>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t s = 0; s < expected.size(); ++s) {
    EXPECT_EQ(expected[s].counts, actual[s].counts) << "segment " << s;
    EXPECT_EQ(expected[s].pages, actual[s].pages) << "segment " << s;
  }
}

TEST(GreedySegmentationTest, MatchesStraightLineReference) {
  std::vector<Segment> input = test::RandomSegments(7, 20, 8);
  std::vector<Segment> expected = ReferenceGreedy(input, 5);

  GreedySegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 5;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(std::move(input), options, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectSameSegments(expected, *result);
}

// Regression for the unbounded lazy-deletion heap: on a large instance the
// stale entries must actually get evicted (compaction fires), and eviction
// must not change the merge sequence — the output still matches the
// reference that never goes stale in the first place.
TEST(GreedySegmentationTest, CompactsStaleHeapEntriesWithoutChangingResult) {
  std::vector<Segment> input = test::RandomSegments(11, 120, 8);
  std::vector<Segment> expected = ReferenceGreedy(input, 4);

  GreedySegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 4;
  SegmentationStats stats;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(std::move(input), options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(stats.heap_compactions, 1u);
  ExpectSameSegments(expected, *result);
}

TEST(GreedySegmentationTest, ResultIsThreadCountInvariant) {
  std::vector<Segment> input = test::RandomSegments(3, 60, 8);
  SegmentationOptions options;
  options.target_segments = 7;

  parallel::SetDefaultThreadCount(1);
  GreedySegmenter segmenter;
  SegmentationStats serial_stats;
  StatusOr<std::vector<Segment>> serial =
      segmenter.Run(input, options, &serial_stats);
  ASSERT_TRUE(serial.ok());

  parallel::SetDefaultThreadCount(4);
  SegmentationStats parallel_stats;
  StatusOr<std::vector<Segment>> threaded =
      segmenter.Run(input, options, &parallel_stats);
  parallel::SetDefaultThreadCount(1);
  ASSERT_TRUE(threaded.ok());

  ExpectSameSegments(*serial, *threaded);
  EXPECT_EQ(serial_stats.ossub_evaluations, parallel_stats.ossub_evaluations);
  EXPECT_EQ(serial_stats.heap_compactions, parallel_stats.heap_compactions);
}

TEST(GreedySegmentationTest, RejectsEmptyInput) {
  GreedySegmenter segmenter;
  SegmentationOptions options;
  EXPECT_EQ(segmenter.Run({}, options, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GreedySegmentationTest, Name) {
  GreedySegmenter segmenter;
  EXPECT_EQ(segmenter.name(), "Greedy");
}

}  // namespace
}  // namespace ossm
