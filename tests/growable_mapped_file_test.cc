#include "storage/growable_mapped_file.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace ossm {
namespace storage {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(GrowableMappedFileTest, CreateGrowWriteReopen) {
  std::string path = TempPath("gmf_basic.bin");
  GrowableMappedFile::Options options;
  options.capacity_bytes = 1 << 20;
  options.chunk_bytes = 64 << 10;
  auto created = GrowableMappedFile::Create(path, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  GrowableMappedFile file = std::move(created).value();
  EXPECT_EQ(file.size(), 0u);

  ASSERT_TRUE(file.Grow(8192).ok());
  EXPECT_EQ(file.size(), 8192u);
  // New bytes read as zero.
  for (uint64_t i = 0; i < 8192; ++i) {
    ASSERT_EQ(file.data()[i], 0) << i;
  }
  std::memcpy(file.data(), "hello", 5);
  std::memcpy(file.data() + 8000, "tail", 4);
  ASSERT_TRUE(file.Sync(0, file.size()).ok());
  ASSERT_TRUE(file.Close().ok());

  auto reopened = GrowableMappedFile::Open(path, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->size(), 8192u);
  EXPECT_EQ(std::memcmp(reopened->data(), "hello", 5), 0);
  EXPECT_EQ(std::memcmp(reopened->data() + 8000, "tail", 4), 0);
  ASSERT_TRUE(reopened->Close(/*unlink_file=*/true).ok());
}

TEST(GrowableMappedFileTest, PointersStableAcrossGrowthInReservationMode) {
  std::string path = TempPath("gmf_stable.bin");
  GrowableMappedFile::Options options;
  options.capacity_bytes = 256 << 20;
  options.chunk_bytes = 64 << 10;
  auto created = GrowableMappedFile::Create(path, options);
  ASSERT_TRUE(created.ok());
  GrowableMappedFile file = std::move(created).value();
  if (!file.using_reservation()) {
    GTEST_SKIP() << "reservation mode unavailable on this machine";
  }
  ASSERT_TRUE(file.Grow(4096).ok());
  char* base = file.data();
  std::memcpy(base, "anchor", 6);
  // Grow far past the first chunk; the base pointer must not move and the
  // early bytes must remain addressable through it.
  ASSERT_TRUE(file.Grow(32 << 20).ok());
  EXPECT_EQ(file.data(), base);
  EXPECT_EQ(std::memcmp(base, "anchor", 6), 0);
  ASSERT_TRUE(file.Close(/*unlink_file=*/true).ok());
}

TEST(GrowableMappedFileTest, GrowPastReservationIsResourceExhausted) {
  std::string path = TempPath("gmf_cap.bin");
  GrowableMappedFile::Options options;
  options.capacity_bytes = 128 << 10;
  options.chunk_bytes = 64 << 10;
  auto created = GrowableMappedFile::Create(path, options);
  ASSERT_TRUE(created.ok());
  GrowableMappedFile file = std::move(created).value();
  if (!file.using_reservation()) {
    GTEST_SKIP() << "reservation mode unavailable on this machine";
  }
  ASSERT_TRUE(file.Grow(128 << 10).ok());
  Status status = file.Grow(256 << 10);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
      << status.ToString();
  ASSERT_TRUE(file.Close(/*unlink_file=*/true).ok());
}

TEST(GrowableMappedFileTest, TruncateToShrinksTheFile) {
  std::string path = TempPath("gmf_trunc.bin");
  GrowableMappedFile::Options options;
  options.capacity_bytes = 1 << 20;
  options.chunk_bytes = 64 << 10;
  auto created = GrowableMappedFile::Create(path, options);
  ASSERT_TRUE(created.ok());
  GrowableMappedFile file = std::move(created).value();
  ASSERT_TRUE(file.Grow(16384).ok());
  ASSERT_TRUE(file.TruncateTo(4096).ok());
  EXPECT_EQ(file.size(), 4096u);
  ASSERT_TRUE(file.Close().ok());

  auto reopened = GrowableMappedFile::Open(path, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->size(), 4096u);
  ASSERT_TRUE(reopened->Close(/*unlink_file=*/true).ok());
}

TEST(GrowableMappedFileTest, ResidentBytesIsBestEffortAndBounded) {
  std::string path = TempPath("gmf_resident.bin");
  GrowableMappedFile::Options options;
  options.capacity_bytes = 1 << 20;
  options.chunk_bytes = 64 << 10;
  auto created = GrowableMappedFile::Create(path, options);
  ASSERT_TRUE(created.ok());
  GrowableMappedFile file = std::move(created).value();
  ASSERT_TRUE(file.Grow(256 << 10).ok());
  std::memset(file.data(), 0x5A, 256 << 10);
  // Touched pages are resident right after the write; the probe may
  // legitimately return 0 (it is best-effort) but never more than the
  // mapping.
  EXPECT_LE(file.ResidentBytes(), file.size() + (64 << 10));
  ASSERT_TRUE(file.Close(/*unlink_file=*/true).ok());
}

TEST(GrowableMappedFileTest, MoveTransfersOwnership) {
  std::string path = TempPath("gmf_move.bin");
  GrowableMappedFile::Options options;
  options.capacity_bytes = 1 << 20;
  auto created = GrowableMappedFile::Create(path, options);
  ASSERT_TRUE(created.ok());
  GrowableMappedFile a = std::move(created).value();
  ASSERT_TRUE(a.Grow(4096).ok());
  a.data()[0] = 'x';
  GrowableMappedFile b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.data()[0], 'x');
  ASSERT_TRUE(b.Close(/*unlink_file=*/true).ok());
}

}  // namespace
}  // namespace storage
}  // namespace ossm
