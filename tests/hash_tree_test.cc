#include "mining/hash_tree.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "datagen/quest_generator.h"
#include "mining/itemset.h"

namespace ossm {
namespace {

TEST(HashTreeTest, CountsSimplePairs) {
  std::vector<Itemset> candidates = {{0, 1}, {1, 2}, {0, 2}};
  HashTree tree(candidates);
  Itemset t1 = {0, 1, 2};
  Itemset t2 = {0, 1};
  Itemset t3 = {2};
  tree.CountTransaction(t1);
  tree.CountTransaction(t2);
  tree.CountTransaction(t3);
  EXPECT_EQ(tree.counts()[0], 2u);  // {0,1}
  EXPECT_EQ(tree.counts()[1], 1u);  // {1,2}
  EXPECT_EQ(tree.counts()[2], 1u);  // {0,2}
}

TEST(HashTreeTest, EmptyCandidateSet) {
  HashTree tree(std::vector<Itemset>{});
  Itemset txn = {1, 2, 3};
  tree.CountTransaction(txn);  // must not crash
  EXPECT_EQ(tree.num_candidates(), 0u);
}

TEST(HashTreeTest, ShortTransactionsAreSkipped) {
  std::vector<Itemset> candidates = {{0, 1, 2}};
  HashTree tree(candidates);
  Itemset txn = {0, 1};
  tree.CountTransaction(txn);
  EXPECT_EQ(tree.counts()[0], 0u);
}

TEST(HashTreeTest, NoDoubleCountingWithTinyFanout) {
  // A fanout of 2 forces many items into the same hash path, the regime
  // where a leaf can be visited several times per transaction.
  std::vector<Itemset> candidates;
  for (ItemId a = 0; a < 8; ++a) {
    for (ItemId b = a + 1; b < 8; ++b) {
      candidates.push_back({a, b});
    }
  }
  HashTree tree(candidates, /*fanout=*/2, /*leaf_capacity=*/2);
  Itemset txn = {0, 1, 2, 3, 4, 5, 6, 7};
  tree.CountTransaction(txn);
  for (size_t c = 0; c < tree.num_candidates(); ++c) {
    EXPECT_EQ(tree.counts()[c], 1u) << "candidate " << c;
  }
}

TEST(HashTreeTest, MatchedListAgreesWithCounts) {
  std::vector<Itemset> candidates = {{0, 1}, {2, 3}, {1, 3}};
  HashTree tree(candidates);
  Itemset txn = {0, 1, 3};
  std::vector<uint32_t> matched;
  tree.CountTransaction(txn, &matched);
  std::sort(matched.begin(), matched.end());
  EXPECT_EQ(matched, (std::vector<uint32_t>{0, 2}));
}

TEST(HashTreeTest, AgreesWithBruteForceOnRandomData) {
  QuestConfig config;
  config.num_items = 25;
  config.num_transactions = 400;
  config.avg_transaction_size = 6;
  config.num_patterns = 8;
  config.seed = 13;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  ASSERT_TRUE(db.ok());

  // Candidate triples drawn at random.
  Rng rng(17);
  std::vector<Itemset> candidates;
  for (int c = 0; c < 200; ++c) {
    Itemset items;
    while (items.size() < 3) {
      ItemId item = static_cast<ItemId>(rng.UniformInt(25));
      if (std::find(items.begin(), items.end(), item) == items.end()) {
        items.push_back(item);
      }
    }
    std::sort(items.begin(), items.end());
    candidates.push_back(items);
  }
  std::sort(candidates.begin(), candidates.end(), ItemsetLess);
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  for (uint32_t fanout : {2u, 4u, 8u}) {
    for (uint32_t capacity : {1u, 4u, 64u}) {
      HashTree tree(candidates, fanout, capacity);
      for (uint64_t t = 0; t < db->num_transactions(); ++t) {
        tree.CountTransaction(db->transaction(t));
      }
      for (size_t c = 0; c < candidates.size(); ++c) {
        uint64_t expected = 0;
        for (uint64_t t = 0; t < db->num_transactions(); ++t) {
          if (db->Contains(t, candidates[c])) ++expected;
        }
        ASSERT_EQ(tree.counts()[c], expected)
            << "fanout " << fanout << " capacity " << capacity
            << " candidate " << c;
      }
    }
  }
}

TEST(HashTreeTest, SingletonCandidates) {
  std::vector<Itemset> candidates = {{2}, {5}};
  HashTree tree(candidates);
  Itemset t1 = {2, 5};
  Itemset t2 = {5};
  tree.CountTransaction(t1);
  tree.CountTransaction(t2);
  EXPECT_EQ(tree.counts()[0], 1u);
  EXPECT_EQ(tree.counts()[1], 2u);
}

TEST(HashTreeTest, DeepSplitAtCandidateSizeKeepsGrowing) {
  // Many candidates sharing a full hash path: the leaf at depth k cannot
  // split further and must grow past the capacity without recursing
  // forever.
  std::vector<Itemset> candidates;
  for (ItemId last = 0; last < 40; ++last) {
    candidates.push_back({0, 8, 16 + last * 8});  // all hash to bucket 0
  }
  HashTree tree(candidates, /*fanout=*/8, /*leaf_capacity=*/2);
  Itemset txn;
  for (ItemId i = 0; i < 400; ++i) txn.push_back(i);
  tree.CountTransaction(txn);
  for (size_t c = 0; c < tree.num_candidates(); ++c) {
    EXPECT_EQ(tree.counts()[c], 1u);
  }
}

}  // namespace
}  // namespace ossm
