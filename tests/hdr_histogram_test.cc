#include "obs/hdr_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/metrics.h"

namespace ossm {
namespace obs {
namespace {

// Exact p-quantile of a sorted sample under the shared convention: rank
// ceil(p*n) clamped to [1, n], 1-based.
uint64_t ExactPercentile(const std::vector<uint64_t>& sorted, double p) {
  size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  rank = std::clamp<size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

TEST(HdrBucketLayoutTest, IndexIsMonotoneAndBoundsHoldTheValue) {
  size_t previous = 0;
  const uint64_t probes[] = {0,     1,    31,    32,      33,
                             63,    64,   100,   1023,    1024,
                             65535, 1000000, 1ull << 40, UINT64_MAX - 1,
                             UINT64_MAX};
  for (uint64_t value : probes) {
    size_t index = HdrBucketLayout::BucketIndex(value);
    ASSERT_LT(index, HdrBucketLayout::kNumBuckets) << value;
    EXPECT_GE(index, previous) << value;
    previous = index;
    EXPECT_LE(HdrBucketLayout::BucketLower(index), value) << value;
    EXPECT_GE(HdrBucketLayout::BucketUpper(index), value) << value;
  }
}

TEST(HdrBucketLayoutTest, SmallValuesGetExactBuckets) {
  for (uint64_t value = 0; value < 32; ++value) {
    size_t index = HdrBucketLayout::BucketIndex(value);
    EXPECT_EQ(HdrBucketLayout::BucketLower(index), value);
    EXPECT_EQ(HdrBucketLayout::BucketUpper(index), value);
  }
}

TEST(HdrBucketLayoutTest, RelativeBucketWidthIsWithinDocumentedBound) {
  Rng rng(7);
  for (int trial = 0; trial < 20000; ++trial) {
    // Log-uniform draw so every magnitude is exercised.
    uint64_t value = rng.Next() >> rng.UniformInt(64);
    if (value < 32) continue;
    size_t index = HdrBucketLayout::BucketIndex(value);
    double lower = static_cast<double>(HdrBucketLayout::BucketLower(index));
    double upper = static_cast<double>(HdrBucketLayout::BucketUpper(index));
    EXPECT_LE((upper - lower) / lower,
              HdrBucketLayout::PercentileErrorBound() + 1e-12)
        << value;
  }
}

TEST(HdrHistogramTest, TracksCountSumMinMax) {
  HdrHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  h.Record(5);
  h.Record(1000);
  h.Record(5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(HdrHistogramTest, SmallValuesReportExactPercentiles) {
  HdrHistogram h;
  for (uint64_t v = 0; v < 32; ++v) h.Record(v);
  // With one sample per value, the p-quantile is value ceil(32p) - 1.
  EXPECT_EQ(h.Percentile(0.5), 15.0);
  EXPECT_EQ(h.Percentile(1.0), 31.0);
  EXPECT_EQ(h.Percentile(0.0), 0.0);
}

// The property the exporter relies on: across seeded distributions, every
// reported percentile stays within the documented relative error of the
// exact sorted-sample percentile (exact below 32, <= 1/32 relative above).
TEST(HdrHistogramTest, PercentilesTrackExactSortedSamples) {
  struct Case {
    const char* name;
    uint64_t seed;
    int draws;
  };
  for (const Case& c : {Case{"uniform", 11, 0}, Case{"exponential", 12, 1},
                        Case{"lognormal", 13, 2}, Case{"constant", 14, 3}}) {
    SCOPED_TRACE(c.name);
    Rng rng(c.seed);
    HdrHistogram h;
    std::vector<uint64_t> samples;
    for (int i = 0; i < 20000; ++i) {
      uint64_t value = 0;
      switch (c.draws) {
        case 0: value = rng.UniformInt(500000); break;
        case 1: value = static_cast<uint64_t>(rng.Exponential(900.0)); break;
        case 2:
          value = static_cast<uint64_t>(std::exp(rng.Gaussian(8.0, 2.5)));
          break;
        default: value = 42; break;
      }
      samples.push_back(value);
      h.Record(value);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
      uint64_t exact = ExactPercentile(samples, p);
      double estimate = h.Percentile(p);
      if (exact < 32) {
        EXPECT_EQ(estimate, static_cast<double>(exact)) << "p=" << p;
      } else {
        double rel = std::abs(estimate - static_cast<double>(exact)) /
                     static_cast<double>(exact);
        EXPECT_LE(rel, HdrBucketLayout::PercentileErrorBound() + 1e-9)
            << "p=" << p << " exact=" << exact << " estimate=" << estimate;
      }
    }
  }
}

// The legacy power-of-two Histogram makes the same promise with a coarser
// bound: the estimate lies inside the bucket that holds the exact rank-th
// sample, i.e. within a factor of 2.
TEST(HistogramComparisonTest, LegacyHistogramStaysWithinFactorOfTwo) {
  for (uint64_t seed : {21ull, 22ull, 23ull}) {
    SCOPED_TRACE(seed);
    Rng rng(seed);
    Histogram h;
    std::vector<uint64_t> samples;
    for (int i = 0; i < 10000; ++i) {
      uint64_t value = static_cast<uint64_t>(rng.Exponential(3000.0));
      samples.push_back(value);
      h.Record(value);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {0.25, 0.5, 0.95, 0.99, 1.0}) {
      uint64_t exact = ExactPercentile(samples, p);
      double estimate = h.Percentile(p);
      if (exact < 2) {
        EXPECT_LE(estimate, 2.0) << "p=" << p;
        continue;
      }
      EXPECT_GE(estimate, static_cast<double>(exact) / 2.0)
          << "p=" << p << " exact=" << exact;
      EXPECT_LE(estimate, static_cast<double>(exact) * 2.0)
          << "p=" << p << " exact=" << exact;
    }
  }
}

// The satellite fix: samples that straddle the single-valued buckets 0 and
// 1 must interpolate exactly, and the first sample of a bucket reports the
// bucket's lower bound instead of leaning upward.
TEST(HistogramComparisonTest, BucketBoundaryPercentilesAreExact) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.Record(0);
  for (int i = 0; i < 5; ++i) h.Record(1);
  EXPECT_EQ(h.Percentile(0.5), 0.0);   // rank 5 of 10 is the last 0
  EXPECT_EQ(h.Percentile(0.6), 1.0);   // rank 6 is the first 1
  EXPECT_EQ(h.Percentile(1.0), 1.0);

  Histogram single;
  single.Record(7);
  EXPECT_EQ(single.Percentile(0.5), 7.0);
  EXPECT_EQ(single.Percentile(1.0), 7.0);
}

TEST(HdrSnapshotTest, MergeAndSubtractAreInverse) {
  HdrHistogram h;
  for (uint64_t v : {1ull, 40ull, 900ull}) h.Record(v);
  HdrSnapshot before = h.Snapshot();
  h.Record(5000);
  h.Record(41);
  HdrSnapshot after = h.Snapshot();

  HdrSnapshot delta = after;
  delta.SubtractBaseline(before);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.sum(), 5041u);
  EXPECT_EQ(HdrBucketLayout::BucketIndex(
                static_cast<uint64_t>(delta.Percentile(1.0))),
            HdrBucketLayout::BucketIndex(5000));

  HdrSnapshot rebuilt = before;
  rebuilt.MergeFrom(delta);
  EXPECT_EQ(rebuilt.count(), after.count());
  EXPECT_EQ(rebuilt.sum(), after.sum());
  EXPECT_EQ(rebuilt.Percentile(0.5), after.Percentile(0.5));
}

TEST(HdrSnapshotTest, EmptySnapshotIsNeutral) {
  HdrSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Percentile(0.99), 0.0);
  HdrSnapshot other;
  other.Record(77);
  other.MergeFrom(empty);
  EXPECT_EQ(other.count(), 1u);
  other.SubtractBaseline(empty);
  EXPECT_EQ(other.count(), 1u);
}

TEST(HdrHistogramTest, ConcurrentRecordsAllLand) {
  HdrHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * 1000 + (i % 997)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  // Percentiles stay inside the recorded range even under concurrency.
  double p99 = h.Percentile(0.99);
  EXPECT_GE(p99, 0.0);
  EXPECT_LE(p99, static_cast<double>(h.max()));
}

}  // namespace
}  // namespace obs
}  // namespace ossm
