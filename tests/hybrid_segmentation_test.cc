#include "core/hybrid_segmentation.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/greedy_segmentation.h"
#include "core/rc_segmentation.h"
#include "tests/segmentation_test_util.h"

namespace ossm {
namespace {

TEST(HybridSegmentationTest, NamesComposeFromPhases) {
  HybridSegmenter random_rc(std::make_unique<RcSegmenter>(), 20);
  HybridSegmenter random_greedy(std::make_unique<GreedySegmenter>(), 20);
  EXPECT_EQ(random_rc.name(), "Random-RC");
  EXPECT_EQ(random_greedy.name(), "Random-Greedy");
}

TEST(HybridSegmentationTest, ReachesTargetThroughBothPhases) {
  HybridSegmenter segmenter(std::make_unique<GreedySegmenter>(), 20);
  SegmentationOptions options;
  options.target_segments = 5;
  SegmentationStats stats;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(test::RandomSegments(1, 100, 6), options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
  // The elaborate phase started from 20 segments, so it evaluated at most
  // ~20^2/2 + merge updates — far fewer than the 100^2/2 the pure algorithm
  // would have needed.
  EXPECT_LT(stats.ossub_evaluations, 400u);
  EXPECT_GT(stats.ossub_evaluations, 0u);
}

TEST(HybridSegmentationTest, PreservesTotalsAndPages) {
  std::vector<Segment> input = test::RandomSegments(2, 60, 5);
  std::vector<uint64_t> totals = test::TotalCounts(input);
  HybridSegmenter segmenter(std::make_unique<RcSegmenter>(), 15);
  SegmentationOptions options;
  options.target_segments = 4;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(std::move(input), options, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(test::TotalCounts(*result), totals);
  EXPECT_EQ(test::CollectPages(*result).size(), 60u);
}

TEST(HybridSegmentationTest, CheaperThanPureElaborate) {
  SegmentationOptions options;
  options.target_segments = 5;

  SegmentationStats pure_stats;
  GreedySegmenter pure;
  ASSERT_TRUE(
      pure.Run(test::RandomSegments(3, 80, 6), options, &pure_stats).ok());

  SegmentationStats hybrid_stats;
  HybridSegmenter hybrid(std::make_unique<GreedySegmenter>(), 16);
  ASSERT_TRUE(
      hybrid.Run(test::RandomSegments(3, 80, 6), options, &hybrid_stats)
          .ok());

  EXPECT_LT(hybrid_stats.ossub_evaluations, pure_stats.ossub_evaluations / 4);
}

TEST(HybridSegmentationTest, IntermediateBelowTargetIsRejected) {
  HybridSegmenter segmenter(std::make_unique<RcSegmenter>(), 3);
  SegmentationOptions options;
  options.target_segments = 10;
  EXPECT_EQ(
      segmenter.Run(test::RandomSegments(4, 50, 4), options, nullptr)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(HybridSegmentationTest, FewInitialSegmentsSkipTheRandomPhase) {
  // With fewer initial segments than n_mid, Random is a no-op and the
  // elaborate phase does all the work.
  HybridSegmenter segmenter(std::make_unique<GreedySegmenter>(), 100);
  SegmentationOptions options;
  options.target_segments = 3;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(test::RandomSegments(5, 10, 4), options, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
}

TEST(HybridSegmentationTest, DeterministicForSeed) {
  SegmentationOptions options;
  options.target_segments = 4;
  options.seed = 77;
  HybridSegmenter segmenter(std::make_unique<RcSegmenter>(), 12);
  StatusOr<std::vector<Segment>> a =
      segmenter.Run(test::RandomSegments(6, 40, 5), options, nullptr);
  StatusOr<std::vector<Segment>> b =
      segmenter.Run(test::RandomSegments(6, 40, 5), options, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t s = 0; s < a->size(); ++s) {
    EXPECT_EQ((*a)[s].counts, (*b)[s].counts);
  }
}

TEST(HybridSegmentationTest, NullFinalPhaseDies) {
  EXPECT_DEATH(HybridSegmenter(nullptr, 10), "Check failed");
}

}  // namespace
}  // namespace ossm
