#include "storage/ingest.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/segment_support_map.h"
#include "storage/pager.h"

namespace ossm {
namespace storage {
namespace {

// ctest runs every gtest case (including each TEST_P instance) as its own
// process; a shared file name would let one process truncate a store another
// still has mapped (SIGBUS). The pid keeps paths process-unique.
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + std::to_string(::getpid()) + "." + name;
}

StreamingIngest::Options SmallPages(AppendPolicy policy) {
  StreamingIngest::Options options;
  options.page_size = 4096;
  options.capacity_bytes = 64 << 20;
  options.policy = policy;
  return options;
}

// Deterministic transaction stream: transaction t holds 1-4 items drawn
// from a 16-item domain by a fixed LCG, strictly increasing.
std::vector<std::vector<ItemId>> SampleTransactions(size_t count) {
  std::vector<std::vector<ItemId>> txns;
  uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (size_t t = 0; t < count; ++t) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    size_t n = 1 + (state >> 33) % 4;
    std::vector<ItemId> items;
    ItemId next = static_cast<ItemId>((state >> 13) % 4);
    for (size_t i = 0; i < n && next < 16; ++i) {
      items.push_back(next);
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      next += 1 + static_cast<ItemId>((state >> 27) % 5);
    }
    txns.push_back(std::move(items));
  }
  return txns;
}

void AppendAll(StreamingIngest* ingest,
               const std::vector<std::vector<ItemId>>& txns, size_t first,
               size_t last) {
  for (size_t t = first; t < last; ++t) {
    ASSERT_TRUE(ingest->Append(txns[t]).ok()) << "transaction " << t;
  }
}

TEST(IngestTest, CommitFoldsIntoTheMapAndSingletonSupportsAreExact) {
  std::string path = TempPath("ingest_basic.pgstore");
  auto created = StreamingIngest::Create(
      path, 16, 4, SmallPages(AppendPolicy::kRoundRobin));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  StreamingIngest ingest = std::move(created).value();

  auto txns = SampleTransactions(500);
  std::vector<uint64_t> expected(16, 0);
  for (const auto& txn : txns) {
    for (ItemId item : txn) expected[item]++;
  }
  AppendAll(&ingest, txns, 0, txns.size());
  EXPECT_EQ(ingest.pending_transactions(), txns.size());
  ASSERT_TRUE(ingest.Commit().ok());
  EXPECT_EQ(ingest.committed_transactions(), txns.size());
  EXPECT_EQ(ingest.pending_transactions(), 0u);
  EXPECT_GT(ingest.committed_wal_pages(), 1u);  // multiple 4K pages

  // Row sums of the folded map are the exact singleton supports, whatever
  // the per-page segment assignment was.
  for (ItemId item = 0; item < 16; ++item) {
    EXPECT_EQ(ingest.map().Support(item), expected[item]) << "item " << item;
  }
  std::filesystem::remove(path);
}

TEST(IngestTest, AppendValidatesDomainAndOrder) {
  std::string path = TempPath("ingest_validate.pgstore");
  auto created = StreamingIngest::Create(
      path, 8, 2, SmallPages(AppendPolicy::kRoundRobin));
  ASSERT_TRUE(created.ok());
  StreamingIngest ingest = std::move(created).value();

  std::vector<ItemId> out_of_domain = {3, 9};
  Status status = ingest.Append(out_of_domain);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("outside the ingest domain"),
            std::string::npos);

  std::vector<ItemId> unsorted = {5, 2};
  status = ingest.Append(unsorted);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("strictly increasing"), std::string::npos);
  std::filesystem::remove(path);
}

class IngestPolicyTest : public ::testing::TestWithParam<AppendPolicy> {};

TEST_P(IngestPolicyTest, ReopenReproducesTheCommittedMapExactly) {
  std::string path = TempPath("ingest_reopen.pgstore");
  auto txns = SampleTransactions(800);
  SegmentSupportMap committed_map;
  {
    auto created =
        StreamingIngest::Create(path, 16, 5, SmallPages(GetParam()));
    ASSERT_TRUE(created.ok());
    StreamingIngest ingest = std::move(created).value();
    AppendAll(&ingest, txns, 0, 300);
    ASSERT_TRUE(ingest.Commit().ok());
    AppendAll(&ingest, txns, 300, 800);
    ASSERT_TRUE(ingest.Commit().ok());
    committed_map = ingest.map();
  }
  auto reopened = StreamingIngest::Open(path, SmallPages(GetParam()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened->replayed_on_open());
  EXPECT_EQ(reopened->committed_transactions(), 800u);
  EXPECT_EQ(reopened->map(), committed_map);
  std::filesystem::remove(path);
}

TEST_P(IngestPolicyTest, FlushedButUncommittedTailIsDiscardedOnReopen) {
  std::string path = TempPath("ingest_flush.pgstore");
  auto txns = SampleTransactions(400);
  SegmentSupportMap committed_map;
  {
    auto created =
        StreamingIngest::Create(path, 16, 3, SmallPages(GetParam()));
    ASSERT_TRUE(created.ok());
    StreamingIngest ingest = std::move(created).value();
    AppendAll(&ingest, txns, 0, 250);
    ASSERT_TRUE(ingest.Commit().ok());
    committed_map = ingest.map();
    // Synced to disk but never committed: a torn tail by construction.
    AppendAll(&ingest, txns, 250, 400);
    ASSERT_TRUE(ingest.Flush().ok());
  }
  auto reopened = StreamingIngest::Open(path, SmallPages(GetParam()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->committed_transactions(), 250u);
  EXPECT_EQ(reopened->map(), committed_map);
  std::filesystem::remove(path);
}

// Simulates a crash between Commit's two phases: the WAL extent is
// committed but the active checkpoint slot still covers the previous
// commit. Open must replay the gap and land on the exact map the
// uncrashed writer produced — for either append policy.
TEST_P(IngestPolicyTest, ReplayAfterCheckpointLagReproducesTheMap) {
  std::string path = TempPath("ingest_replay.pgstore");
  auto txns = SampleTransactions(600);
  SegmentSupportMap final_map;
  {
    auto created =
        StreamingIngest::Create(path, 16, 4, SmallPages(GetParam()));
    ASSERT_TRUE(created.ok());
    StreamingIngest ingest = std::move(created).value();
    AppendAll(&ingest, txns, 0, 200);
    ASSERT_TRUE(ingest.Commit().ok());
    AppendAll(&ingest, txns, 200, 600);
    ASSERT_TRUE(ingest.Commit().ok());
    final_map = ingest.map();
  }
  // Rewind the checkpoint flip: the second commit wrote its matrix into
  // the inactive slot and flipped; un-flip so the slot from commit 1 is
  // active again, exactly the on-disk state if the writer had died after
  // phase 1 of commit 2.
  {
    Pager::Options options;
    auto pager = Pager::Open(path, options);
    ASSERT_TRUE(pager.ok());
    auto slot_a = pager.value()->FindSegment(SegmentKind::kOssmCounts);
    auto slot_b = pager.value()->FindSegment(SegmentKind::kOssmCountsAlt);
    ASSERT_TRUE(slot_a.has_value());
    ASSERT_TRUE(slot_b.has_value());
    SegmentId active = (pager.value()->segment(*slot_a).flags & 1) != 0
                           ? *slot_a
                           : *slot_b;
    SegmentId stale = active == *slot_a ? *slot_b : *slot_a;
    ASSERT_LT(pager.value()->segment(stale).aux[2],
              pager.value()->segment(active).aux[2]);
    pager.value()->SetSegmentFlags(active, 0);
    pager.value()->SetSegmentFlags(stale, 1);
    ASSERT_TRUE(pager.value()->Commit().ok());
  }
  auto reopened = StreamingIngest::Open(path, SmallPages(GetParam()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->replayed_on_open());
  EXPECT_EQ(reopened->committed_transactions(), 600u);
  EXPECT_EQ(reopened->map(), final_map);
  std::filesystem::remove(path);
}

TEST_P(IngestPolicyTest, MaterializeDatabaseRoundTripsTheTransactions) {
  std::string path = TempPath("ingest_materialize.pgstore");
  auto txns = SampleTransactions(300);
  auto created =
      StreamingIngest::Create(path, 16, 3, SmallPages(GetParam()));
  ASSERT_TRUE(created.ok());
  StreamingIngest ingest = std::move(created).value();
  AppendAll(&ingest, txns, 0, txns.size());
  ASSERT_TRUE(ingest.Commit().ok());

  auto db = ingest.MaterializeDatabase();
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db->num_transactions(), txns.size());
  for (size_t t = 0; t < txns.size(); ++t) {
    auto row = db->transaction(t);
    ASSERT_EQ(std::vector<ItemId>(row.begin(), row.end()), txns[t])
        << "transaction " << t;
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Policies, IngestPolicyTest,
                         ::testing::Values(AppendPolicy::kRoundRobin,
                                           AppendPolicy::kClosestFit));

// The every-byte truncation property at the ingest level: cut the store
// anywhere inside the flushed-but-uncommitted tail and reopen must land on
// the committed state; a cut inside the committed region must be refused
// as kInvalidArgument (the ossm_io v2 taxonomy).
TEST(IngestTest, TruncationAtEveryTailByteReopensOnCommittedState) {
  std::string path = TempPath("ingest_trunc.pgstore");
  auto txns = SampleTransactions(300);
  uint64_t committed_bytes = 0;
  SegmentSupportMap committed_map;
  {
    auto created = StreamingIngest::Create(
        path, 16, 3, SmallPages(AppendPolicy::kRoundRobin));
    ASSERT_TRUE(created.ok());
    StreamingIngest ingest = std::move(created).value();
    AppendAll(&ingest, txns, 0, 200);
    ASSERT_TRUE(ingest.Commit().ok());
    committed_map = ingest.map();
    committed_bytes = ingest.pager()->committed_bytes();
    AppendAll(&ingest, txns, 200, 300);
    ASSERT_TRUE(ingest.Flush().ok());
  }
  uint64_t file_size = std::filesystem::file_size(path);
  ASSERT_GT(file_size, committed_bytes);

  std::string scratch = TempPath("ingest_trunc_cut.pgstore");
  for (uint64_t cut = committed_bytes; cut <= file_size; ++cut) {
    std::filesystem::copy_file(
        path, scratch, std::filesystem::copy_options::overwrite_existing);
    ASSERT_EQ(::truncate(scratch.c_str(), static_cast<off_t>(cut)), 0);
    SCOPED_TRACE("truncated at byte " + std::to_string(cut));
    auto reopened = StreamingIngest::Open(
        scratch, SmallPages(AppendPolicy::kRoundRobin));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ASSERT_EQ(reopened->committed_transactions(), 200u);
    ASSERT_EQ(reopened->map(), committed_map);
  }

  // Inside the committed region: tampering, refused.
  std::filesystem::copy_file(
      path, scratch, std::filesystem::copy_options::overwrite_existing);
  ASSERT_EQ(::truncate(scratch.c_str(),
                       static_cast<off_t>(committed_bytes - 1)),
            0);
  auto tampered = StreamingIngest::Open(
      scratch, SmallPages(AppendPolicy::kRoundRobin));
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(
      tampered.status().message().find("truncated in the committed region"),
      std::string::npos);
  std::filesystem::remove(path);
  std::filesystem::remove(scratch);
}

// Kill -9 semantics via fork + _exit: the child commits a prefix, appends
// and flushes more, then dies without running any destructor or commit.
// The parent must reopen on exactly the committed prefix.
TEST(IngestTest, KillMidAppendReopensCrashSafe) {
  std::string path = TempPath("ingest_kill.pgstore");
  auto txns = SampleTransactions(500);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto created = StreamingIngest::Create(
        path, 16, 4, SmallPages(AppendPolicy::kRoundRobin));
    if (!created.ok()) _exit(2);
    StreamingIngest ingest = std::move(created).value();
    for (size_t t = 0; t < 350; ++t) {
      if (!ingest.Append(txns[t]).ok()) _exit(3);
    }
    if (!ingest.Commit().ok()) _exit(4);
    for (size_t t = 350; t < 500; ++t) {
      if (!ingest.Append(txns[t]).ok()) _exit(5);
    }
    if (!ingest.Flush().ok()) _exit(6);
    _exit(0);  // no destructors, no final commit: the crash
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
      << "child failed with status " << wstatus;

  auto reopened = StreamingIngest::Open(
      path, SmallPages(AppendPolicy::kRoundRobin));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->committed_transactions(), 350u);
  std::vector<uint64_t> expected(16, 0);
  for (size_t t = 0; t < 350; ++t) {
    for (ItemId item : txns[t]) expected[item]++;
  }
  for (ItemId item = 0; item < 16; ++item) {
    EXPECT_EQ(reopened->map().Support(item), expected[item])
        << "item " << item;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace storage
}  // namespace ossm
