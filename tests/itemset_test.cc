#include "mining/itemset.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ossm {
namespace {

TEST(ItemsetTest, IsCanonicalItemset) {
  EXPECT_TRUE(IsCanonicalItemset(Itemset{}));
  EXPECT_TRUE(IsCanonicalItemset(Itemset{5}));
  EXPECT_TRUE(IsCanonicalItemset(Itemset{1, 2, 9}));
  EXPECT_FALSE(IsCanonicalItemset(Itemset{2, 1}));
  EXPECT_FALSE(IsCanonicalItemset(Itemset{1, 1}));
}

TEST(ItemsetTest, IsSubsetOf) {
  Itemset haystack = {1, 3, 5, 7};
  EXPECT_TRUE(IsSubsetOf(Itemset{3, 7}, haystack));
  EXPECT_TRUE(IsSubsetOf(Itemset{}, haystack));
  EXPECT_TRUE(IsSubsetOf(haystack, haystack));
  EXPECT_FALSE(IsSubsetOf(Itemset{3, 6}, haystack));
  EXPECT_FALSE(IsSubsetOf(Itemset{0}, haystack));
}

TEST(ItemsetTest, JoinPrefixJoinsSharedPrefix) {
  Itemset out;
  EXPECT_TRUE(JoinPrefix(Itemset{1, 2, 5}, Itemset{1, 2, 8}, &out));
  EXPECT_EQ(out, (Itemset{1, 2, 5, 8}));
}

TEST(ItemsetTest, JoinPrefixRequiresOrderedLastItems) {
  Itemset out;
  EXPECT_FALSE(JoinPrefix(Itemset{1, 2, 8}, Itemset{1, 2, 5}, &out));
  EXPECT_FALSE(JoinPrefix(Itemset{1, 2}, Itemset{1, 2}, &out));
}

TEST(ItemsetTest, JoinPrefixRejectsDifferentPrefixes) {
  Itemset out;
  EXPECT_FALSE(JoinPrefix(Itemset{1, 2, 5}, Itemset{1, 3, 8}, &out));
  EXPECT_FALSE(JoinPrefix(Itemset{1}, Itemset{1, 2}, &out));
}

TEST(ItemsetTest, JoinPrefixSingletons) {
  Itemset out;
  EXPECT_TRUE(JoinPrefix(Itemset{3}, Itemset{9}, &out));
  EXPECT_EQ(out, (Itemset{3, 9}));
}

TEST(ItemsetTest, AllOneSmallerSubsets) {
  std::vector<Itemset> subsets;
  AllOneSmallerSubsets(Itemset{1, 4, 6}, &subsets);
  ASSERT_EQ(subsets.size(), 3u);
  EXPECT_EQ(subsets[0], (Itemset{4, 6}));
  EXPECT_EQ(subsets[1], (Itemset{1, 6}));
  EXPECT_EQ(subsets[2], (Itemset{1, 4}));
}

TEST(ItemsetTest, HasherWorksInUnorderedSet) {
  std::unordered_set<Itemset, ItemsetHasher> set;
  set.insert({1, 2});
  set.insert({1, 2});
  set.insert({2, 1});  // different vector, even if not canonical
  set.insert({1, 2, 3});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(Itemset{1, 2}));
  EXPECT_FALSE(set.contains(Itemset{9}));
}

TEST(ItemsetTest, ItemsetLessOrdersBySizeThenLex) {
  EXPECT_TRUE(ItemsetLess({9}, {1, 2}));        // smaller size first
  EXPECT_TRUE(ItemsetLess({1, 2}, {1, 3}));     // lexicographic within size
  EXPECT_FALSE(ItemsetLess({1, 3}, {1, 2}));
  EXPECT_FALSE(ItemsetLess({1, 2}, {1, 2}));    // irreflexive
}

}  // namespace
}  // namespace ossm
