#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace ossm {
namespace json {
namespace {

TEST(JsonParseTest, Scalars) {
  StatusOr<Value> v = Parse("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());

  v = Parse("true");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_bool());
  EXPECT_TRUE(v->bool_value());

  v = Parse("false");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());

  v = Parse("42");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_number());
  EXPECT_EQ(v->number_value(), 42.0);

  v = Parse("-1.5e3");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->number_value(), -1500.0);

  v = Parse("\"hello\"");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_string());
  EXPECT_EQ(v->string_value(), "hello");
}

TEST(JsonParseTest, StringEscapes) {
  StatusOr<Value> v = Parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "a\"b\\c\nd\teA");
}

TEST(JsonParseTest, UnicodeEscapeEncodesUtf8) {
  StatusOr<Value> v = Parse(R"("\u00e9\u4e2d")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "\xc3\xa9\xe4\xb8\xad");
}

TEST(JsonParseTest, ArraysAndNesting) {
  StatusOr<Value> v = Parse("[1, [2, 3], {\"k\": 4}]");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_array());
  ASSERT_EQ(v->array().size(), 3u);
  EXPECT_EQ(v->array()[0].number_value(), 1.0);
  ASSERT_TRUE(v->array()[1].is_array());
  EXPECT_EQ(v->array()[1].array()[1].number_value(), 3.0);
  ASSERT_TRUE(v->array()[2].is_object());
  EXPECT_EQ(v->array()[2].Find("k")->number_value(), 4.0);
}

TEST(JsonParseTest, ObjectPreservesInsertionOrder) {
  StatusOr<Value> v = Parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->object().size(), 3u);
  EXPECT_EQ(v->object()[0].first, "z");
  EXPECT_EQ(v->object()[1].first, "a");
  EXPECT_EQ(v->object()[2].first, "m");
}

TEST(JsonParseTest, FindOnNonObjectAndMissingKey) {
  StatusOr<Value> v = Parse(R"({"present": true})");
  ASSERT_TRUE(v.ok());
  EXPECT_NE(v->Find("present"), nullptr);
  EXPECT_EQ(v->Find("absent"), nullptr);
  StatusOr<Value> num = Parse("7");
  ASSERT_TRUE(num.ok());
  EXPECT_EQ(num->Find("anything"), nullptr);
}

TEST(JsonParseTest, TypedFallbackAccessors) {
  StatusOr<Value> v = Parse(R"({"n": 2.5, "s": "x"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("n")->NumberOr(-1), 2.5);
  EXPECT_EQ(v->Find("s")->NumberOr(-1), -1);
  EXPECT_EQ(v->Find("s")->StringOr("fallback"), "x");
  EXPECT_EQ(v->Find("n")->StringOr("fallback"), "fallback");
}

TEST(JsonParseTest, WhitespaceTolerated) {
  StatusOr<Value> v = Parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->array().size(), 2u);
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\": }").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("'single'").ok());
  EXPECT_FALSE(Parse("NaN").ok());
  EXPECT_FALSE(Parse("Infinity").ok());
  EXPECT_FALSE(Parse("1.2.3").ok());
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("{} {}").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("null x").ok());
}

TEST(JsonParseTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Parse(deep).ok());
  // A depth well under the cap parses fine.
  std::string ok(30, '[');
  ok += std::string(30, ']');
  EXPECT_TRUE(Parse(ok).ok());
}

TEST(JsonParseTest, ErrorsCarryCorruptionStatus) {
  StatusOr<Value> v = Parse("{bad}");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace json
}  // namespace ossm
