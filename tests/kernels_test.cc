#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace ossm {
namespace kernels {
namespace {

// Sizes straddling every lane boundary: empty, sub-lane, exact multiples of
// the 4-wide AVX2 step and of the unrolled 4x4 block, one-off either side,
// and two larger runs.
const size_t kSizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100,
                        1000};

enum class Fill { kFullRange, kSmall, kZeroHeavy };

std::vector<uint64_t> MakeInput(Rng& rng, size_t n, Fill fill) {
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (fill) {
      case Fill::kFullRange:
        v[i] = rng.Next();
        break;
      case Fill::kSmall:
        v[i] = rng.UniformInt(1000);
        break;
      case Fill::kZeroHeavy:
        v[i] = rng.Bernoulli(0.8) ? 0 : rng.Next();
        break;
    }
  }
  return v;
}

// Reference implementations, written as the plainest possible loops so the
// table under test (scalar included) is checked against independent code.
uint64_t RefMinSum(const std::vector<uint64_t>& a,
                   const std::vector<uint64_t>& b) {
  uint64_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) total += std::min(a[i], b[i]);
  return total;
}

uint64_t RefPairLossRow(uint64_t ax, uint64_t bx,
                        const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b) {
  uint64_t mx = ax + bx;
  uint64_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += std::min(mx, a[i] + b[i]);
    total -= std::min(ax, a[i]);
    total -= std::min(bx, b[i]);
  }
  return total;
}

class KernelsDifferentialTest : public ::testing::TestWithParam<Isa> {};

// Every kernel at every supported level must agree bit-for-bit with the
// reference loops on every size and input shape — including full-range
// uint64 values that exercise the AVX2 sign-flip min and wrapping adds.
TEST_P(KernelsDifferentialTest, MatchesReferenceOnRandomInputs) {
  const KernelOps& ops = OpsFor(GetParam());
  Rng rng(0x5eed + static_cast<uint64_t>(GetParam()));
  for (size_t n : kSizes) {
    for (Fill fill : {Fill::kFullRange, Fill::kSmall, Fill::kZeroHeavy}) {
      std::vector<uint64_t> a = MakeInput(rng, n, fill);
      std::vector<uint64_t> b = MakeInput(rng, n, fill);

      EXPECT_EQ(ops.min_sum(a.data(), b.data(), n), RefMinSum(a, b));

      std::vector<uint64_t> acc = a;
      ops.min_accumulate(acc.data(), b.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(acc[i], std::min(a[i], b[i]));
      }

      uint64_t ref_sum = 0;
      for (uint64_t v : a) ref_sum += v;
      EXPECT_EQ(ops.sum(a.data(), n), ref_sum);

      std::vector<uint64_t> out(n, 0);
      ops.add(a.data(), b.data(), out.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], a[i] + b[i]);
      }
      // Aliased form (out == a), as PairwiseOssub's merged row uses it.
      std::vector<uint64_t> aliased = a;
      ops.add(aliased.data(), b.data(), aliased.data(), n);
      EXPECT_EQ(aliased, out);

      uint64_t ax = n == 0 ? 7 : a[rng.UniformInt(n)];
      uint64_t bx = rng.Next();
      std::vector<uint64_t> merged(n);
      for (size_t i = 0; i < n; ++i) merged[i] = a[i] + b[i];
      EXPECT_EQ(ops.pair_loss_row(ax, bx, a.data(), b.data(), merged.data(),
                                  n),
                RefPairLossRow(ax, bx, a, b));

      uint64_t ref_and = 0;
      uint64_t ref_pop = 0;
      for (size_t i = 0; i < n; ++i) {
        ref_and += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
        ref_pop += static_cast<uint64_t>(__builtin_popcountll(a[i]));
      }
      EXPECT_EQ(ops.and_popcount(a.data(), b.data(), n), ref_and);
      EXPECT_EQ(ops.popcount(a.data(), n), ref_pop);

      std::vector<uint64_t> words(n, 0);
      EXPECT_EQ(ops.and_count(a.data(), b.data(), words.data(), n), ref_and);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(words[i], a[i] & b[i]);
      }
      // Aliased form (out == a), as BitmapIndex's running intersection
      // uses it.
      std::vector<uint64_t> and_aliased = a;
      EXPECT_EQ(
          ops.and_count(and_aliased.data(), b.data(), and_aliased.data(), n),
          ref_and);
      EXPECT_EQ(and_aliased, words);
    }
  }
}

// Two supported levels must agree with each other on identical inputs (the
// cross-check the library's determinism story rests on).
TEST(KernelsTest, AllSupportedLevelsAgree) {
  std::vector<Isa> isas = SupportedIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  Rng rng(99);
  std::vector<uint64_t> a = MakeInput(rng, 1000, Fill::kFullRange);
  std::vector<uint64_t> b = MakeInput(rng, 1000, Fill::kFullRange);
  const KernelOps& scalar = ScalarOps();
  for (Isa isa : isas) {
    const KernelOps& ops = OpsFor(isa);
    EXPECT_EQ(ops.min_sum(a.data(), b.data(), a.size()),
              scalar.min_sum(a.data(), b.data(), a.size()));
    EXPECT_EQ(ops.and_popcount(a.data(), b.data(), a.size()),
              scalar.and_popcount(a.data(), b.data(), a.size()));
  }
}

TEST(KernelsTest, ZeroLengthRunsAreSafeOnNullPointers) {
  for (Isa isa : SupportedIsas()) {
    const KernelOps& ops = OpsFor(isa);
    EXPECT_EQ(ops.min_sum(nullptr, nullptr, 0), 0u);
    EXPECT_EQ(ops.sum(nullptr, 0), 0u);
    EXPECT_EQ(ops.pair_loss_row(1, 2, nullptr, nullptr, nullptr, 0), 0u);
    EXPECT_EQ(ops.and_popcount(nullptr, nullptr, 0), 0u);
    EXPECT_EQ(ops.popcount(nullptr, 0), 0u);
    ops.min_accumulate(nullptr, nullptr, 0);
    ops.add(nullptr, nullptr, nullptr, 0);
    EXPECT_EQ(ops.and_count(nullptr, nullptr, nullptr, 0), 0u);
  }
}

TEST(KernelsTest, ParseIsaSpec) {
  StatusOr<Isa> native = ParseIsaSpec("native");
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(*native, SupportedIsas().back());

  StatusOr<Isa> empty = ParseIsaSpec("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, *native);

  StatusOr<Isa> scalar = ParseIsaSpec("scalar");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(*scalar, Isa::kScalar);

  StatusOr<Isa> avx2 = ParseIsaSpec("avx2");
  ASSERT_TRUE(avx2.ok());
  EXPECT_EQ(*avx2, Isa::kAvx2);

  EXPECT_FALSE(ParseIsaSpec("sse9").ok());
  EXPECT_FALSE(ParseIsaSpec("AVX2").ok());
}

TEST(KernelsTest, IsaNamesRoundTrip) {
  for (Isa isa : SupportedIsas()) {
    StatusOr<Isa> parsed = ParseIsaSpec(IsaName(isa));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, isa);
  }
}

TEST(KernelsTest, ActiveIsaIsSupportedAndForceable) {
  Isa original = ActiveIsa();
  EXPECT_TRUE(IsaSupported(original));
  for (Isa isa : SupportedIsas()) {
    ForceIsa(isa);
    EXPECT_EQ(ActiveIsa(), isa);
    // The dispatched wrappers must route to the forced table.
    uint64_t a[3] = {5, 10, ~uint64_t{0}};
    uint64_t b[3] = {7, 2, 1};
    EXPECT_EQ(MinSumU64(a, b, 3), 5u + 2u + 1u);
  }
  ForceIsa(original);
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    AllIsas, KernelsDifferentialTest, ::testing::ValuesIn(SupportedIsas()),
    [](const ::testing::TestParamInfo<Isa>& info) {
      return std::string(IsaName(info.param));
    });

}  // namespace kernels
}  // namespace ossm
