// The full losslessness matrix: every candidate-generation miner crossed
// with every pruner configuration and thread count must mine the identical
// pattern set — the library's single most important contract, in one
// parameterized sweep.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/generalized_ossm.h"
#include "core/ossm_builder.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "mining/candidate_pruner.h"
#include "mining/deduction_rules.h"
#include "mining/depth_project.h"
#include "mining/dhp.h"
#include "mining/eclat.h"
#include "parallel/thread_pool.h"

namespace ossm {
namespace {

enum class MinerKind { kApriori, kDhp, kDepthProject, kEclat };
enum class PrunerKind { kNone, kOssm, kGeneralized, kCombined };

std::string MinerName(MinerKind kind) {
  switch (kind) {
    case MinerKind::kApriori:
      return "Apriori";
    case MinerKind::kDhp:
      return "Dhp";
    case MinerKind::kDepthProject:
      return "DepthProject";
    case MinerKind::kEclat:
      return "Eclat";
  }
  return "Unknown";
}

std::string PrunerName(PrunerKind kind) {
  switch (kind) {
    case PrunerKind::kNone:
      return "NoPruner";
    case PrunerKind::kOssm:
      return "Ossm";
    case PrunerKind::kGeneralized:
      return "GeneralizedOssm";
    case PrunerKind::kCombined:
      return "Combined";
  }
  return "Unknown";
}

using MatrixParams = std::tuple<MinerKind, PrunerKind, uint32_t>;

class MinerPrunerMatrixTest : public testing::TestWithParam<MatrixParams> {
 protected:
  static void SetUpTestSuite() {
    SkewedConfig gen;
    gen.num_items = 30;
    gen.num_transactions = 2000;
    gen.avg_transaction_size = 5;
    gen.in_season_boost = 8.0;
    gen.seed = 77;
    StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
    ASSERT_TRUE(db.ok());
    db_ = new TransactionDatabase(std::move(*db));

    OssmBuildOptions build_options;
    build_options.algorithm = SegmentationAlgorithm::kGreedy;
    build_options.target_segments = 8;
    build_options.transactions_per_page = 50;
    StatusOr<OssmBuildResult> build = BuildOssm(*db_, build_options);
    ASSERT_TRUE(build.ok());
    build_ = new OssmBuildResult(std::move(*build));

    StatusOr<GeneralizedOssm> generalized = GeneralizedOssm::Build(
        *db_, build_->map, build_->layout, build_->page_to_segment, 12);
    ASSERT_TRUE(generalized.ok());
    generalized_ = new GeneralizedOssm(std::move(*generalized));

    // The reference answer, mined once with no pruner.
    AprioriConfig reference;
    reference.min_support_fraction = 0.05;
    StatusOr<MiningResult> mined = MineApriori(*db_, reference);
    ASSERT_TRUE(mined.ok());
    reference_ = new MiningResult(std::move(*mined));
  }

  static void TearDownTestSuite() {
    delete reference_;
    delete generalized_;
    delete build_;
    delete db_;
    reference_ = nullptr;
    generalized_ = nullptr;
    build_ = nullptr;
    db_ = nullptr;
  }

  void TearDown() override {
    parallel::SetDefaultThreadCount(parallel::DefaultThreadCount());
  }

  static TransactionDatabase* db_;
  static OssmBuildResult* build_;
  static GeneralizedOssm* generalized_;
  static MiningResult* reference_;
};

TransactionDatabase* MinerPrunerMatrixTest::db_ = nullptr;
OssmBuildResult* MinerPrunerMatrixTest::build_ = nullptr;
GeneralizedOssm* MinerPrunerMatrixTest::generalized_ = nullptr;
MiningResult* MinerPrunerMatrixTest::reference_ = nullptr;

TEST_P(MinerPrunerMatrixTest, EveryCellMinesTheSamePatterns) {
  auto [miner, pruner_kind, threads] = GetParam();
  parallel::SetDefaultThreadCount(threads);

  OssmPruner ossm_pruner(&build_->map);
  GeneralizedOssmPruner generalized_pruner(generalized_);
  // Fresh per run: the combined pruner accumulates observed supports.
  CombinedPruner combined_pruner(&ossm_pruner, db_->num_transactions());
  const CandidatePruner* pruner = nullptr;
  switch (pruner_kind) {
    case PrunerKind::kNone:
      break;
    case PrunerKind::kOssm:
      pruner = &ossm_pruner;
      break;
    case PrunerKind::kGeneralized:
      pruner = &generalized_pruner;
      break;
    case PrunerKind::kCombined:
      pruner = &combined_pruner;
      break;
  }

  StatusOr<MiningResult> result = Status::Unimplemented("");
  switch (miner) {
    case MinerKind::kApriori: {
      AprioriConfig config;
      config.min_support_fraction = 0.05;
      config.pruner = pruner;
      result = MineApriori(*db_, config);
      break;
    }
    case MinerKind::kDhp: {
      DhpConfig config;
      config.min_support_fraction = 0.05;
      config.pruner = pruner;
      result = MineDhp(*db_, config);
      break;
    }
    case MinerKind::kDepthProject: {
      DepthProjectConfig config;
      config.min_support_fraction = 0.05;
      config.pruner = pruner;
      result = MineDepthProject(*db_, config);
      break;
    }
    case MinerKind::kEclat: {
      EclatConfig config;
      config.min_support_fraction = 0.05;
      config.pruner = pruner;
      result = MineEclat(*db_, config);
      break;
    }
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->SamePatternsAs(*reference_));

  // With any real pruner on this seasonal data, pruning must engage.
  if (pruner != nullptr) {
    EXPECT_GT(result->stats.TotalPrunedByBound(), 0u);
  }

  // The combined pruner's upper bound is the min of the OSSM's and the
  // deduction rules', so it can never prune less than the OSSM alone; and
  // every rejection is attributed to exactly one source.
  if (pruner_kind == PrunerKind::kCombined) {
    AprioriConfig ossm_only;
    ossm_only.min_support_fraction = 0.05;
    ossm_only.pruner = &ossm_pruner;
    StatusOr<MiningResult> baseline = MineApriori(*db_, ossm_only);
    ASSERT_TRUE(baseline.ok());
    if (miner == MinerKind::kApriori) {
      EXPECT_GE(result->stats.TotalPrunedByBound() +
                    result->stats.TotalDerivedWithoutCounting(),
                baseline->stats.TotalPrunedByBound());
    }
    EXPECT_EQ(result->stats.TotalEliminatedByOssm() +
                  result->stats.TotalEliminatedByNdi(),
              result->stats.TotalPrunedByBound());
  }
}

std::string MatrixName(const testing::TestParamInfo<MatrixParams>& info) {
  return MinerName(std::get<0>(info.param)) +
         PrunerName(std::get<1>(info.param)) + "Threads" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, MinerPrunerMatrixTest,
    testing::Combine(testing::Values(MinerKind::kApriori, MinerKind::kDhp,
                                     MinerKind::kDepthProject,
                                     MinerKind::kEclat),
                     testing::Values(PrunerKind::kNone, PrunerKind::kOssm,
                                     PrunerKind::kGeneralized,
                                     PrunerKind::kCombined),
                     testing::Values(1u, 4u)),
    MatrixName);

}  // namespace
}  // namespace ossm
