#ifndef OSSM_TESTS_MINING_TEST_UTIL_H_
#define OSSM_TESTS_MINING_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "data/transaction_database.h"
#include "mining/mining_result.h"

namespace ossm {
namespace test {

// Exhaustive reference miner for small domains: enumerates every itemset
// over at most 16 items and counts it directly. Returns the canonical order
// that MiningResult::Canonicalize produces.
inline std::vector<FrequentItemset> BruteForceFrequent(
    const TransactionDatabase& db, uint64_t min_support) {
  std::vector<FrequentItemset> result;
  uint32_t m = db.num_items();
  if (m > 16) return result;  // guarded by tests
  for (uint32_t mask = 1; mask < (1u << m); ++mask) {
    Itemset items;
    for (uint32_t i = 0; i < m; ++i) {
      if (mask & (1u << i)) items.push_back(i);
    }
    uint64_t support = 0;
    for (uint64_t t = 0; t < db.num_transactions(); ++t) {
      if (db.Contains(t, items)) ++support;
    }
    if (support >= min_support) result.push_back({items, support});
  }
  MiningResult sorter;
  sorter.itemsets = std::move(result);
  sorter.Canonicalize();
  return sorter.itemsets;
}

// A small hand-rolled database with known frequent sets, used by several
// miner tests: 8 transactions over 5 items.
inline TransactionDatabase TinyDb() {
  TransactionDatabase db(5);
  EXPECT_TRUE(db.Append({0, 1, 2}).ok());
  EXPECT_TRUE(db.Append({0, 1}).ok());
  EXPECT_TRUE(db.Append({0, 1, 3}).ok());
  EXPECT_TRUE(db.Append({1, 2}).ok());
  EXPECT_TRUE(db.Append({0, 2}).ok());
  EXPECT_TRUE(db.Append({0, 1, 2, 4}).ok());
  EXPECT_TRUE(db.Append({3}).ok());
  EXPECT_TRUE(db.Append({0, 1, 2}).ok());
  return db;
}

}  // namespace test
}  // namespace ossm

#endif  // OSSM_TESTS_MINING_TEST_UTIL_H_
