// The NDI miner's contract: its output is a subset of the frequent
// itemsets (with identical supports) that is a *lossless condensed
// representation* — every frequent itemset left out is derivable, i.e. the
// full-depth deduction rules pin its support exactly from the supports of
// its proper subsets.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "core/ossm_builder.h"
#include "data/transaction_database.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "mining/candidate_pruner.h"
#include "mining/deduction_rules.h"
#include "mining/itemset.h"
#include "mining/ndi.h"

namespace ossm {
namespace {

TransactionDatabase SkewedDb(uint64_t seed) {
  SkewedConfig gen;
  gen.num_items = 25;
  gen.num_transactions = 1500;
  gen.avg_transaction_size = 6.0;
  gen.in_season_boost = 8.0;
  gen.seed = seed;
  StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

// Duplicates item `source` as a new item (id = num_items) present in
// exactly the same transactions — the classic way to force derivability.
TransactionDatabase Mirror(const TransactionDatabase& db, ItemId source) {
  TransactionDatabase mirrored(db.num_items() + 1);
  Itemset txn;
  for (uint64_t t = 0; t < db.num_transactions(); ++t) {
    std::span<const ItemId> items = db.transaction(t);
    txn.assign(items.begin(), items.end());
    if (std::find(txn.begin(), txn.end(), source) != txn.end()) {
      txn.push_back(db.num_items());  // largest id: stays sorted
    }
    EXPECT_TRUE(mirrored.Append(txn).ok());
  }
  return mirrored;
}

using SupportTable = std::unordered_map<Itemset, uint64_t, ItemsetHasher>;

SupportTable TableOf(const MiningResult& result) {
  SupportTable table;
  for (const FrequentItemset& f : result.itemsets) {
    table[f.items] = f.support;
  }
  return table;
}

// Checks the representation contract of `ndi` against the full frequent
// set `all`: containment with equal supports, and derivability of every
// set left out (given the supports of all its proper subsets, which the
// full frequent set supplies — subsets of a frequent set are frequent).
void CheckRepresentation(const TransactionDatabase& db,
                         const MiningResult& ndi, const MiningResult& all) {
  SupportTable rep = TableOf(ndi);
  SupportTable frequent = TableOf(all);

  for (const FrequentItemset& f : ndi.itemsets) {
    auto it = frequent.find(f.items);
    ASSERT_TRUE(it != frequent.end())
        << "representation contains a non-frequent set";
    EXPECT_EQ(it->second, f.support);
  }

  DeductionRules rules(db.num_transactions(), 0);
  for (const FrequentItemset& f : all.itemsets) {
    rules.Record(f.items, f.support);
  }
  for (const FrequentItemset& f : all.itemsets) {
    if (rep.contains(f.items)) continue;
    SupportInterval interval = rules.Bounds(f.items);
    EXPECT_TRUE(interval.Exact() && interval.lower == f.support)
        << "left-out frequent set is not derivable (interval ["
        << interval.lower << ", " << interval.upper << "], support "
        << f.support << ")";
  }
}

TEST(NdiTest, RepresentationIsLosslessOnSkewedData) {
  for (uint64_t seed : {9u, 23u}) {
    TransactionDatabase db = SkewedDb(seed);

    AprioriConfig reference;
    reference.min_support_fraction = 0.04;
    StatusOr<MiningResult> all = MineApriori(db, reference);
    ASSERT_TRUE(all.ok());

    NdiConfig config;
    config.min_support_fraction = 0.04;
    StatusOr<MiningResult> ndi = MineNdi(db, config);
    ASSERT_TRUE(ndi.ok());

    CheckRepresentation(db, *ndi, *all);
  }
}

TEST(NdiTest, MirroredItemShrinksTheRepresentation) {
  TransactionDatabase db = Mirror(SkewedDb(41), 0);

  AprioriConfig reference;
  reference.min_support_fraction = 0.04;
  StatusOr<MiningResult> all = MineApriori(db, reference);
  ASSERT_TRUE(all.ok());

  NdiConfig config;
  config.min_support_fraction = 0.04;
  StatusOr<MiningResult> ndi = MineNdi(db, config);
  ASSERT_TRUE(ndi.ok());

  CheckRepresentation(db, *ndi, *all);
  // Any frequent superset of the mirrored pair beyond the pair itself is
  // derivable, so the representation must be strictly smaller. (On mirrored
  // data the shrink comes from the exact-at-bound shortcut: the pair sits on
  // its own upper bound, so its supersets are never even generated.)
  EXPECT_LT(ndi->itemsets.size(), all->itemsets.size());
}

TEST(NdiTest, DerivableCandidatesAreDroppedWithoutCounting) {
  // Hand-built so that {A, B, C} is derivable while every pair stays
  // strictly inside its own bounds (hence extendable, hence the triple is
  // generated): every AB-transaction has C (tight upper, rule dropping {C})
  // and every C-transaction has A or B (tight lower, rule dropping {A, B}).
  // sup(AB) = 2, sup(AC) = sup(BC) = 4, sup(A) = sup(B) = 5, sup(C) = 6,
  // total = 9: both rules give 2, so the interval is the point [2, 2].
  TransactionDatabase db(4);  // A=0, B=1, C=2, filler D=3
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(db.Append({0, 1, 2}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(db.Append({0, 2}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(db.Append({1, 2}).ok());
  ASSERT_TRUE(db.Append({0}).ok());
  ASSERT_TRUE(db.Append({1}).ok());
  ASSERT_TRUE(db.Append({3}).ok());

  NdiConfig config;
  config.min_support_count = 2;
  StatusOr<MiningResult> ndi = MineNdi(db, config);
  ASSERT_TRUE(ndi.ok());
  EXPECT_GT(ndi->stats.TotalDerivedWithoutCounting(), 0u);

  SupportTable rep = TableOf(*ndi);
  EXPECT_FALSE(rep.contains(Itemset{0, 1, 2}));

  AprioriConfig reference;
  reference.min_support_count = 2;
  StatusOr<MiningResult> all = MineApriori(db, reference);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(TableOf(*all).contains(Itemset{0, 1, 2}));
  CheckRepresentation(db, *ndi, *all);
}

TEST(NdiTest, DepthLimitYieldsASupersetRepresentation) {
  TransactionDatabase db = Mirror(SkewedDb(57), 1);

  NdiConfig full;
  full.min_support_fraction = 0.04;
  StatusOr<MiningResult> exact_rep = MineNdi(db, full);
  ASSERT_TRUE(exact_rep.ok());

  NdiConfig limited = full;
  limited.max_depth = 2;
  StatusOr<MiningResult> shallow_rep = MineNdi(db, limited);
  ASSERT_TRUE(shallow_rep.ok());

  // Shallower rules detect fewer derivable sets, never more: the limited
  // representation contains the exact one, support for support.
  SupportTable shallow = TableOf(*shallow_rep);
  for (const FrequentItemset& f : exact_rep->itemsets) {
    auto it = shallow.find(f.items);
    ASSERT_TRUE(it != shallow.end());
    EXPECT_EQ(it->second, f.support);
  }

  // And the limited representation is still lossless under full-depth
  // reconstruction.
  AprioriConfig reference;
  reference.min_support_fraction = 0.04;
  StatusOr<MiningResult> all = MineApriori(db, reference);
  ASSERT_TRUE(all.ok());
  CheckRepresentation(db, *shallow_rep, *all);
}

TEST(NdiTest, OssmBoundDoesNotChangeTheRepresentation) {
  TransactionDatabase db = SkewedDb(73);

  OssmBuildOptions build_options;
  build_options.algorithm = SegmentationAlgorithm::kGreedy;
  build_options.target_segments = 8;
  build_options.transactions_per_page = 50;
  StatusOr<OssmBuildResult> build = BuildOssm(db, build_options);
  ASSERT_TRUE(build.ok());
  OssmPruner pruner(&build->map);

  NdiConfig plain;
  plain.min_support_fraction = 0.04;
  StatusOr<MiningResult> without = MineNdi(db, plain);
  ASSERT_TRUE(without.ok());

  NdiConfig fused = plain;
  fused.pruner = &pruner;
  StatusOr<MiningResult> with = MineNdi(db, fused);
  ASSERT_TRUE(with.ok());

  EXPECT_TRUE(with->SamePatternsAs(*without));
}

}  // namespace
}  // namespace ossm
