#include "obs/export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ossm {
namespace obs {
namespace {

// A fixed snapshot whose JSON rendering is pinned by the golden file in
// tests/testdata/. Keep in sync with metrics_report_golden.json.
MetricsSnapshot GoldenSnapshot() {
  MetricsSnapshot snapshot;
  snapshot.counters = {
      {"apriori.level2.candidates_generated", 292},
      {"apriori.level2.pruned_by_bound", 150},
      {"io.bytes_read", 4096},
  };
  snapshot.gauges = {
      {"ossm.pages", 300},
      {"ossm.segments", 40},
  };
  HistogramSnapshot read_size;
  read_size.count = 3;
  read_size.sum = 7168;
  read_size.min = 1024;
  read_size.max = 4096;
  read_size.p50 = 2048;
  read_size.p95 = 4000;
  read_size.p99 = 4090;
  HistogramSnapshot build_span;
  build_span.count = 2;
  build_span.sum = 3500;
  build_span.min = 1500;
  build_span.max = 2000;
  build_span.p50 = 1700.5;
  build_span.p95 = 1980;
  build_span.p99 = 1996;
  snapshot.histograms = {
      {"io.read_size", read_size},
      {"span.ossm.build", build_span},
  };
  return snapshot;
}

std::string ReadTestdataFile(const std::string& name) {
  std::string path = std::string(OSSM_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("apriori.level2"), "apriori.level2");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonReportTest, MatchesGoldenFile) {
  std::ostringstream out;
  WriteJsonReport(GoldenSnapshot(), out);
  EXPECT_EQ(out.str(), ReadTestdataFile("metrics_report_golden.json"));
}

TEST(JsonReportTest, EmptySnapshotIsStillValidJson) {
  std::ostringstream out;
  WriteJsonReport(MetricsSnapshot{}, out);
  EXPECT_EQ(out.str(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {},\n  \"spans\": {}\n}\n");
}

TEST(TextReportTest, ContainsSectionsAndStrippedSpanNames) {
  std::ostringstream out;
  WriteTextReport(GoldenSnapshot(), out);
  std::string text = out.str();
  EXPECT_NE(text.find("== OSSM metrics report =="), std::string::npos);
  EXPECT_NE(text.find("counters"), std::string::npos);
  EXPECT_NE(text.find("apriori.level2.candidates_generated"),
            std::string::npos);
  EXPECT_NE(text.find("gauges"), std::string::npos);
  EXPECT_NE(text.find("histograms"), std::string::npos);
  EXPECT_NE(text.find("spans (durations in us)"), std::string::npos);
  // The span table lists the name without the "span." storage prefix.
  EXPECT_NE(text.find("ossm.build"), std::string::npos);
}

TEST(TextReportTest, EmptySnapshotPrintsHeaderOnly) {
  std::ostringstream out;
  WriteTextReport(MetricsSnapshot{}, out);
  EXPECT_EQ(out.str(), "== OSSM metrics report ==\n");
}

TEST(ChromeTraceTest, WritesCompleteEvents) {
  std::vector<TraceEvent> events;
  events.push_back({"apriori.mine", 0, 10, 100, 0});
  events.push_back({"apriori.count_pass", 0, 20, 50, 1});
  std::ostringstream out;
  WriteChromeTrace(events, out);
  EXPECT_EQ(
      out.str(),
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "  {\"name\": \"apriori.mine\", \"cat\": \"ossm\", \"ph\": \"X\", "
      "\"ts\": 10, \"dur\": 100, \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"depth\": 0}},\n"
      "  {\"name\": \"apriori.count_pass\", \"cat\": \"ossm\", \"ph\": "
      "\"X\", \"ts\": 20, \"dur\": 50, \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"depth\": 1}}\n"
      "]}\n");
}

TEST(ChromeTraceTest, EmptyTraceIsValid) {
  std::ostringstream out;
  WriteChromeTrace({}, out);
  EXPECT_EQ(out.str(),
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": []}\n");
}

}  // namespace
}  // namespace obs
}  // namespace ossm
