// Causal tracing across the thread pool: every ParallelFor/ParallelForEach
// shard gets a flow id whose start marker is emitted on the forking thread
// and whose end marker is emitted on whichever pool thread runs the shard.
// These tests pin the pairing invariant (exactly one start + one end per
// id, start before end, ends spread across threads) and the Chrome trace
// rendering ("ph":"s"/"f" arrows).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace ossm {
namespace obs {
namespace {

struct FlowPair {
  const TraceEvent* start = nullptr;
  const TraceEvent* end = nullptr;
};

std::map<uint64_t, FlowPair> PairFlows(const std::vector<TraceEvent>& events) {
  std::map<uint64_t, FlowPair> pairs;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceEvent::Kind::kFlowStart) {
      EXPECT_EQ(pairs[event.flow_id].start, nullptr)
          << "duplicate flow start for id " << event.flow_id;
      pairs[event.flow_id].start = &event;
    } else if (event.kind == TraceEvent::Kind::kFlowEnd) {
      EXPECT_EQ(pairs[event.flow_id].end, nullptr)
          << "duplicate flow end for id " << event.flow_id;
      pairs[event.flow_id].end = &event;
    }
  }
  return pairs;
}

class FlowTraceTest : public testing::Test {
 protected:
  void SetUp() override {
    SetTraceEventRetention(true);
    DrainTraceEvents();  // discard anything earlier tests left behind
  }
  void TearDown() override {
    DrainTraceEvents();
    SetTraceEventRetention(false);
  }
};

TEST_F(FlowTraceTest, NewFlowIdsAreUniqueAndNonZero) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = NewFlowId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

TEST_F(FlowTraceTest, MarkersAreDroppedWithoutRetention) {
  SetTraceEventRetention(false);
  EmitFlowStart("pool.shard", NewFlowId());
  SetTraceEventRetention(true);
  EXPECT_TRUE(DrainTraceEvents().empty());
}

TEST_F(FlowTraceTest, ParallelForEachPairsFlowsAcrossPoolThreads) {
  constexpr uint32_t kLanes = 4;
  parallel::ThreadPool pool(kLanes);

  // A rendezvous inside the tasks: no lane finishes until every lane has
  // started, so the four lanes are pinned to four distinct OS threads and
  // the flow ends cannot all collapse onto the calling thread.
  std::atomic<uint32_t> arrived{0};
  pool.ParallelForEach(kLanes, [&](uint64_t) {
    arrived.fetch_add(1);
    while (arrived.load() < kLanes) std::this_thread::yield();
  });

  std::vector<TraceEvent> events = DrainTraceEvents();
  std::map<uint64_t, FlowPair> pairs = PairFlows(events);
  ASSERT_EQ(pairs.size(), kLanes);

  std::set<uint64_t> start_threads;
  std::set<uint64_t> end_threads;
  for (const auto& [flow_id, pair] : pairs) {
    ASSERT_NE(pair.start, nullptr) << "flow " << flow_id << " has no start";
    ASSERT_NE(pair.end, nullptr) << "flow " << flow_id << " has no end";
    EXPECT_EQ(pair.start->name, "pool.lane");
    EXPECT_EQ(pair.end->name, "pool.lane");
    EXPECT_LE(pair.start->start_us, pair.end->start_us);
    start_threads.insert(pair.start->thread_id);
    end_threads.insert(pair.end->thread_id);
  }
  // All forks happen on the calling thread; the rendezvous guarantees the
  // joins landed on kLanes distinct threads.
  EXPECT_EQ(start_threads.size(), 1u);
  EXPECT_EQ(end_threads.size(), kLanes);

  // Each lane also recorded its span; the flow end must sit inside it so
  // Chrome binds the arrow to the enclosing slice.
  size_t lane_spans = 0;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceEvent::Kind::kSpan && event.name == "pool.lane") {
      ++lane_spans;
    }
  }
  EXPECT_EQ(lane_spans, kLanes);
}

TEST_F(FlowTraceTest, ParallelForEmitsOneFlowPerShard) {
  parallel::ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 300, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 300u * 299 / 2);

  std::vector<TraceEvent> events = DrainTraceEvents();
  std::map<uint64_t, FlowPair> pairs = PairFlows(events);
  ASSERT_EQ(pairs.size(), 3u);
  for (const auto& [flow_id, pair] : pairs) {
    ASSERT_NE(pair.start, nullptr);
    ASSERT_NE(pair.end, nullptr);
    EXPECT_EQ(pair.start->name, "pool.shard");
    EXPECT_LE(pair.start->start_us, pair.end->start_us);
  }
}

TEST_F(FlowTraceTest, SerialFallbackEmitsNoFlows) {
  parallel::ThreadPool pool(1);  // workerless: everything runs inline
  pool.ParallelFor(0, 100, [](uint32_t, uint64_t, uint64_t) {});
  pool.ParallelForEach(10, [](uint64_t) {});
  for (const TraceEvent& event : DrainTraceEvents()) {
    EXPECT_EQ(event.kind, TraceEvent::Kind::kSpan);
  }
}

TEST_F(FlowTraceTest, ChromeTraceRendersFlowArrowPairs) {
  parallel::ThreadPool pool(2);
  std::atomic<uint32_t> arrived{0};
  pool.ParallelForEach(2, [&](uint64_t) {
    arrived.fetch_add(1);
    while (arrived.load() < 2) std::this_thread::yield();
  });
  std::vector<TraceEvent> events = DrainTraceEvents();

  std::ostringstream out;
  WriteChromeTrace(std::span<const TraceEvent>(events), out);
  std::string trace = out.str();

  // One "s" (start) and one "f" (end, bound to the enclosing slice) per
  // lane, sharing an id — the arrow Chrome draws between pool threads.
  size_t starts = 0;
  size_t ends = 0;
  for (size_t at = trace.find("\"ph\": \"s\""); at != std::string::npos;
       at = trace.find("\"ph\": \"s\"", at + 1)) {
    ++starts;
  }
  for (size_t at = trace.find("\"ph\": \"f\""); at != std::string::npos;
       at = trace.find("\"ph\": \"f\"", at + 1)) {
    ++ends;
  }
  EXPECT_EQ(starts, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_NE(trace.find("\"bp\": \"e\""), std::string::npos);
  EXPECT_NE(trace.find("\"id\": "), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace ossm
