#include "obs/metrics.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ossm {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();  // default delta is 1
  EXPECT_EQ(counter.value(), 1u);
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(GaugeTest, SetAndAddBothWays) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.Set(100);
  EXPECT_EQ(gauge.value(), 100);
  gauge.Add(-150);
  EXPECT_EQ(gauge.value(), -50);
  gauge.Set(7);
  EXPECT_EQ(gauge.value(), 7);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0u);
  EXPECT_EQ(histogram.min(), UINT64_MAX);
  EXPECT_EQ(histogram.max(), 0u);
  EXPECT_EQ(histogram.Percentile(0.5), 0.0);
}

TEST(HistogramTest, SingleSampleIsEveryPercentile) {
  Histogram histogram;
  histogram.Record(42);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.sum(), 42u);
  EXPECT_EQ(histogram.min(), 42u);
  EXPECT_EQ(histogram.max(), 42u);
  // Clamping to [min, max] pins every quantile of a single sample.
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(1.0), 42.0);
}

TEST(HistogramTest, BasicStatsAndMonotonicPercentiles) {
  Histogram histogram;
  uint64_t sum = 0;
  for (uint64_t v = 1; v <= 1000; ++v) {
    histogram.Record(v);
    sum += v;
  }
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_EQ(histogram.sum(), sum);
  EXPECT_EQ(histogram.min(), 1u);
  EXPECT_EQ(histogram.max(), 1000u);

  double p50 = histogram.Percentile(0.50);
  double p95 = histogram.Percentile(0.95);
  double p99 = histogram.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Power-of-two buckets are coarse, but the median of 1..1000 must land
  // in the right ballpark (its bucket spans 512..1023).
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1000.0);
}

TEST(HistogramTest, RecordsZeroAndHugeSamples) {
  Histogram histogram;
  histogram.Record(0);
  histogram.Record(UINT64_MAX);
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), UINT64_MAX);
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  Histogram histogram;
  constexpr int kThreads = 4;
  constexpr int kSamples = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kSamples; ++i) {
        histogram.Record(static_cast<uint64_t>(i % 128));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(histogram.count(),
            static_cast<uint64_t>(kThreads) * kSamples);
  uint64_t per_thread_sum = 0;
  for (int i = 0; i < kSamples; ++i) per_thread_sum += i % 128;
  EXPECT_EQ(histogram.sum(), kThreads * per_thread_sum);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 127u);
}

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("miner.candidates");
  Counter& b = registry.GetCounter("miner.candidates");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g1 = registry.GetGauge("pages");
  Gauge& g2 = registry.GetGauge("pages");
  EXPECT_EQ(&g1, &g2);

  HdrHistogram& h1 = registry.GetHistogram("span.x");
  HdrHistogram& h2 = registry.GetHistogram("span.x");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, NamespacesAreIndependent) {
  MetricsRegistry registry;
  registry.GetCounter("x").Add(1);
  registry.GetGauge("x").Set(2);
  registry.GetHistogram("x").Record(3);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].second, 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 2);
  EXPECT_EQ(snapshot.histograms[0].second.sum, 3u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zeta").Add(1);
  registry.GetCounter("alpha").Add(2);
  registry.GetCounter("mid").Add(3);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "alpha");
  EXPECT_EQ(snapshot.counters[1].first, "mid");
  EXPECT_EQ(snapshot.counters[2].first, "zeta");
}

TEST(MetricsRegistryTest, SnapshotComputesHistogramQuantiles) {
  MetricsRegistry registry;
  HdrHistogram& histogram = registry.GetHistogram("lat");
  for (uint64_t v = 1; v <= 100; ++v) histogram.Record(v);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& h = snapshot.histograms[0].second;
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.min, 1u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_LE(h.p50, h.p95);
  EXPECT_LE(h.p95, h.p99);
}

TEST(MetricsRegistryTest, ConcurrentLookupsAndIncrements) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves by name each round: exercises the map mutex
      // against the lock-free increments.
      for (int i = 0; i < kIncrements; ++i) {
        registry.GetCounter("shared.counter").Add();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared.counter").value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace obs
}  // namespace ossm
