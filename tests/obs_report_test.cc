#include "obs/report.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace ossm {
namespace obs {
namespace {

// A fully fabricated report — no CaptureEnvironment(), no live registry —
// so the JSON rendering is identical on every machine and pinned by the
// golden file. Keep in sync with tests/testdata/run_report_golden.json.
RunReport GoldenReport() {
  RunReport report;
  report.name = "bench.fig4_speedup";
  report.environment.git_rev = "abc1234";
  report.environment.compiler = "gcc 13.2.0";
  report.environment.build_type = "release";
  report.environment.os = "linux";
  report.environment.hardware_concurrency = 8;
  report.environment.threads = 4;
  report.SetWorkload("dataset", "drifting");
  report.SetWorkload("transactions", uint64_t{20000});
  report.SetWorkload("threshold", 0.01);
  report.AddPhaseSeconds("baseline_mine", 1.25);
  report.AddPhaseSeconds("sweep", 10.5);
  report.AddValue("speedup.greedy.n160", 3.75);
  report.AddValue("c2_fraction.greedy.n160", 0.042);
  report.metrics.counters = {
      {"apriori.candidates_counted", 125000},
      {"apriori.pruned_by_bound", 90000},
  };
  report.metrics.gauges = {{"pool.queue_depth", 0}};
  HistogramSnapshot task_us;
  task_us.count = 16;
  task_us.sum = 64000;
  task_us.min = 2000;
  task_us.max = 6000;
  task_us.p50 = 3900.5;
  task_us.p95 = 5800;
  task_us.p99 = 5960;
  report.metrics.histograms = {{"pool.task_us", task_us}};
  return report;
}

std::string ReadTestdataFile(const std::string& name) {
  std::string path = std::string(OSSM_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

std::string Render(const RunReport& report) {
  std::ostringstream out;
  WriteRunReport(report, out);
  return out.str();
}

TEST(RunReportTest, MatchesGoldenFile) {
  EXPECT_EQ(Render(GoldenReport()), ReadTestdataFile("run_report_golden.json"))
      << "RunReport JSON drifted from the golden file. The layout is a "
         "versioned contract (bench_compare and committed baselines parse "
         "it); bump kRunReportSchemaVersion when changing it deliberately.";
}

TEST(RunReportTest, WriteIsDeterministic) {
  EXPECT_EQ(Render(GoldenReport()), Render(GoldenReport()));
}

TEST(RunReportTest, ParseRoundTripsEveryField) {
  RunReport original = GoldenReport();
  StatusOr<RunReport> parsed = ParseRunReport(Render(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->schema_version, kRunReportSchemaVersion);
  EXPECT_EQ(parsed->name, original.name);
  EXPECT_EQ(parsed->environment.git_rev, "abc1234");
  EXPECT_EQ(parsed->environment.compiler, "gcc 13.2.0");
  EXPECT_EQ(parsed->environment.build_type, "release");
  EXPECT_EQ(parsed->environment.os, "linux");
  EXPECT_EQ(parsed->environment.hardware_concurrency, 8u);
  EXPECT_EQ(parsed->environment.threads, 4u);
  EXPECT_EQ(parsed->workload, original.workload);
  EXPECT_EQ(parsed->phases, original.phases);
  EXPECT_EQ(parsed->values, original.values);
  EXPECT_EQ(parsed->metrics.counters, original.metrics.counters);
  EXPECT_EQ(parsed->metrics.gauges, original.metrics.gauges);
  ASSERT_EQ(parsed->metrics.histograms.size(), 1u);
  EXPECT_EQ(parsed->metrics.histograms[0].first, "pool.task_us");
  EXPECT_EQ(parsed->metrics.histograms[0].second.count, 16u);
  EXPECT_EQ(parsed->metrics.histograms[0].second.sum, 64000u);
  EXPECT_EQ(parsed->metrics.histograms[0].second.p50, 3900.5);

  // Reprinting the parsed report reproduces the original bytes — %.6g
  // doubles survive the parse/print cycle.
  EXPECT_EQ(Render(*parsed), Render(original));
}

TEST(RunReportTest, AddPhaseSecondsAccumulatesSameName) {
  RunReport report;
  report.AddPhaseSeconds("mine", 1.0);
  report.AddPhaseSeconds("load", 0.25);
  report.AddPhaseSeconds("mine", 2.0);
  ASSERT_EQ(report.phases.size(), 2u);
  EXPECT_EQ(report.phases[0].first, "mine");
  EXPECT_EQ(report.phases[0].second, 3.0);
  EXPECT_EQ(report.phases[1].first, "load");
}

TEST(RunReportTest, SetWorkloadOverwrites) {
  RunReport report;
  report.SetWorkload("seed", uint64_t{1});
  report.SetWorkload("seed", uint64_t{2});
  ASSERT_EQ(report.workload.size(), 1u);
  EXPECT_EQ(report.workload.at("seed"), "2");
}

TEST(RunReportTest, RejectsNewerSchemaVersion) {
  std::string text = Render(GoldenReport());
  std::string needle = "\"schema_version\": 1";
  size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(), "\"schema_version\": 999");
  StatusOr<RunReport> parsed = ParseRunReport(text);
  EXPECT_FALSE(parsed.ok());
}

TEST(RunReportTest, RejectsNonReportDocuments) {
  EXPECT_FALSE(ParseRunReport("[]").ok());
  EXPECT_FALSE(ParseRunReport("{}").ok());
  EXPECT_FALSE(ParseRunReport("not json").ok());
}

TEST(RunReportTest, SaveAndLoadFile) {
  std::string path =
      testing::TempDir() + "/ossm_run_report_test_roundtrip.json";
  RunReport original = GoldenReport();
  ASSERT_TRUE(SaveRunReportFile(original, path).ok());
  StatusOr<RunReport> loaded = LoadRunReportFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Render(*loaded), Render(original));
  std::remove(path.c_str());

  EXPECT_FALSE(LoadRunReportFile("/nonexistent/nowhere.json").ok());
}

TEST(RunReportTest, MakeRunReportCapturesEnvironment) {
  RunReport report = MakeRunReport("smoke");
  EXPECT_EQ(report.name, "smoke");
  EXPECT_EQ(report.schema_version, kRunReportSchemaVersion);
  EXPECT_FALSE(report.environment.compiler.empty());
  EXPECT_FALSE(report.environment.os.empty());
  EXPECT_GE(report.environment.threads, 1u);
}

}  // namespace
}  // namespace obs
}  // namespace ossm
