#include "obs/trace.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "obs/obs.h"

namespace ossm {
namespace obs {
namespace {

// Restores the process-wide retention flag on scope exit so tests cannot
// leak state into each other.
class RetentionGuard {
 public:
  explicit RetentionGuard(bool retain) : old_(TraceEventRetention()) {
    SetTraceEventRetention(retain);
    DrainTraceEvents();  // start from a clean buffer
  }
  ~RetentionGuard() { SetTraceEventRetention(old_); }

 private:
  bool old_;
};

TEST(TraceSpanTest, RetentionOffBuffersNothing) {
  RetentionGuard guard(false);
  // OSSM_METRICS is unset under ctest, so spans are fully inactive here.
  {
    TraceSpan span("invisible");
    EXPECT_EQ(CurrentSpanDepth(), 0u);
  }
  EXPECT_TRUE(DrainTraceEvents().empty());
}

TEST(TraceSpanTest, NestedSpansRecordDepthAndTiming) {
  RetentionGuard guard(true);
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
  }
  std::vector<TraceEvent> events = DrainTraceEvents();
  ASSERT_EQ(events.size(), 2u);

  // The inner span closes (and records) first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(events[0].thread_id, events[1].thread_id);
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_GE(events[1].duration_us, events[0].duration_us);
}

TEST(TraceSpanTest, CurrentSpanDepthTracksNesting) {
  RetentionGuard guard(true);
  EXPECT_EQ(CurrentSpanDepth(), 0u);
  {
    TraceSpan a("a");
    EXPECT_EQ(CurrentSpanDepth(), 1u);
    {
      TraceSpan b("b");
      EXPECT_EQ(CurrentSpanDepth(), 2u);
    }
    EXPECT_EQ(CurrentSpanDepth(), 1u);
  }
  EXPECT_EQ(CurrentSpanDepth(), 0u);
  DrainTraceEvents();
}

TEST(TraceSpanTest, DrainMovesEventsOutExactlyOnce) {
  RetentionGuard guard(true);
  { TraceSpan span("once"); }
  EXPECT_EQ(DrainTraceEvents().size(), 1u);
  EXPECT_TRUE(DrainTraceEvents().empty());
}

TEST(TraceSpanTest, ThreadsGetDistinctIdsAndMergeOnDrain) {
  RetentionGuard guard(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([] { TraceSpan span("worker"); });
  }
  for (std::thread& thread : threads) thread.join();

  std::vector<TraceEvent> events = DrainTraceEvents();
  std::vector<TraceEvent> workers;
  for (TraceEvent& event : events) {
    if (event.name == "worker") workers.push_back(std::move(event));
  }
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_NE(workers[0].thread_id, workers[1].thread_id);
}

TEST(TraceSpanTest, MacroExpandsToAScopedSpan) {
  RetentionGuard guard(true);
  {
    OSSM_TRACE_SPAN("macro.span");
    EXPECT_EQ(CurrentSpanDepth(), 1u);
  }
  std::vector<TraceEvent> events = DrainTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "macro.span");
}

TEST(TraceTest, NowIsMonotonic) {
  uint64_t a = TraceNowMicros();
  uint64_t b = TraceNowMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace obs
}  // namespace ossm
