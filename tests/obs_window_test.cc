#include "obs/window.h"

#include <gtest/gtest.h>

#include "obs/hdr_histogram.h"

namespace ossm {
namespace obs {
namespace {

constexpr uint64_t kWidth = 1000;  // one window per 1000 clock units

TEST(WindowedHistogramTest, SamplesBeforeFirstReadAreNotLost) {
  // Regression guard: the window clock starts at construction, so traffic
  // that lands before the first scrape must show up in that scrape rather
  // than being baselined away.
  HdrHistogram h;
  WindowedHistogram win(&h, kWidth, 60, /*now=*/0);
  h.Record(100);
  h.Record(200);
  HdrSnapshot merged = win.Merged(/*now=*/500, /*last_n=*/10);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.sum(), 300u);
}

TEST(WindowedHistogramTest, MergedCoversClosedWindowsPlusPartialHead) {
  HdrHistogram h;
  WindowedHistogram win(&h, kWidth, 60, 0);
  h.Record(10);                       // window [0, 1000)
  win.Merged(100, 1);                 // observe while the head is open
  h.Record(20);                       // still window [0, 1000)
  h.Record(30);                       // ...
  // After one rotation the old head is one slot back: last_n=1 sees only
  // the new (empty) head plus nothing partial, last_n=2 sees everything.
  HdrSnapshot head_only = win.Merged(1500, 1);
  EXPECT_EQ(head_only.count(), 0u);
  HdrSnapshot both = win.Merged(1500, 2);
  EXPECT_EQ(both.count(), 3u);
  EXPECT_EQ(both.sum(), 60u);
}

TEST(WindowedHistogramTest, PartialHeadKeepsReadingsLive) {
  HdrHistogram h;
  WindowedHistogram win(&h, kWidth, 60, 0);
  win.Merged(1500, 1);  // rotate into window [1000, 2000)
  h.Record(500);
  // The sample is in the still-open head; it must be visible immediately.
  EXPECT_EQ(win.Merged(1600, 1).count(), 1u);
}

TEST(WindowedHistogramTest, OldWindowsAgeOutOfTheMerge) {
  HdrHistogram h;
  WindowedHistogram win(&h, kWidth, 60, 0);
  h.Record(10);
  win.Merged(500, 1);  // sample observed into the head window [0, 1000)
  // 20 windows later the sample is outside a last-10 merge but inside a
  // last-60 merge.
  EXPECT_EQ(win.Merged(20500, 10).count(), 0u);
  EXPECT_EQ(win.Merged(20500, 60).count(), 1u);
  // Far outside the ring entirely, it is gone.
  EXPECT_EQ(win.Merged(200500, 60).count(), 0u);
}

TEST(WindowedHistogramTest, UnobservedGapAttributesDeltaToTheLastWindow) {
  HdrHistogram h;
  WindowedHistogram win(&h, kWidth, 60, 0);
  h.Record(7);  // recorded at "t=100", but nobody was reading
  // First read happens 5 windows later: the whole delta lands in the most
  // recent closed window (the documented approximation), so a merge wide
  // enough to include it still counts the sample.
  EXPECT_EQ(win.Merged(5500, 10).count(), 1u);
}

TEST(WindowedHistogramTest, RateUsesTheObservedSpan) {
  HdrHistogram h;
  WindowedHistogram win(&h, kWidth, 60, 0);
  for (int i = 0; i < 100; ++i) h.Record(1);
  // 100 samples over 500 clock units of observation: the span is capped at
  // time-since-construction, not padded to last_n windows.
  double rate = win.Rate(500, 10);
  EXPECT_NEAR(rate, 100.0 / 500.0, 1e-9);
  // With no samples the rate is zero.
  HdrHistogram empty;
  WindowedHistogram empty_win(&empty, kWidth, 60, 0);
  EXPECT_EQ(empty_win.Rate(500, 10), 0.0);
}

TEST(WindowedRatioTest, RatioOverDeltasNotCumulative) {
  WindowedRatio ratio(kWidth, 60, /*now=*/0);
  ratio.Observe(100, 50, 100);  // first feed: deltas 50/100
  EXPECT_NEAR(ratio.Ratio(200, 10, -1.0), 0.5, 1e-9);
  ratio.Observe(300, 50, 200);  // 0 new hits over 100 new lookups
  // The window now holds 50 hits over 200 lookups.
  EXPECT_NEAR(ratio.Ratio(400, 10, -1.0), 0.25, 1e-9);
}

TEST(WindowedRatioTest, FallsBackWhenWindowHasNoTraffic) {
  WindowedRatio ratio(kWidth, 60, 0);
  ratio.Observe(100, 80, 100);
  // 200 windows later nothing remains in the ring: fallback.
  EXPECT_EQ(ratio.Ratio(200500, 10, -1.0), -1.0);
}

TEST(WindowedRatioTest, ClampsNonMonotoneFeeds) {
  WindowedRatio ratio(kWidth, 60, 0);
  ratio.Observe(100, 10, 20);
  ratio.Observe(200, 5, 10);  // a restart: cumulative values went backwards
  EXPECT_NEAR(ratio.Ratio(300, 10, -1.0), 0.5, 1e-9);  // still 10/20
}

TEST(WindowedHistogramTest, MultiWindowIdleGapAgesExactlyByGapStart) {
  // A sample recorded before a 5-window idle gap is attributed to the
  // window open when the gap began, so after the first post-gap read it
  // sits exactly 5 slots back: a 5-window merge misses it, a 6-window
  // merge still sees it. This pins the aging boundary, not just "wide
  // enough finds it".
  HdrHistogram h;
  WindowedHistogram win(&h, kWidth, 60, /*now=*/0);
  h.Record(42);  // conceptually at t=100, unobserved
  EXPECT_EQ(win.Merged(5500, 5).count(), 0u);
  EXPECT_EQ(win.Merged(5500, 6).count(), 1u);
}

TEST(WindowedHistogramTest, GapLongerThanTheRingClearsEveryWindow) {
  // An idle gap that laps the whole ring leaves nothing behind: the head
  // absorbs the pre-gap delta, then the lap clears every slot including
  // that one. Even a full-ring merge reads empty afterwards.
  HdrHistogram h;
  WindowedHistogram win(&h, kWidth, /*num_windows=*/4, 0);
  h.Record(7);
  EXPECT_EQ(win.Merged(10500, 4).count(), 0u);
  // The ring keeps working after the lap: new traffic is visible.
  h.Record(8);
  EXPECT_EQ(win.Merged(10600, 4).count(), 1u);
}

TEST(WindowedRatioTest, GapDeltaLandsInTheNewHeadWindow) {
  // WindowedRatio rotates before folding the feed, so a delta observed
  // after an idle gap lands in the freshly-opened head — not in the stale
  // window that was open when the previous feed arrived.
  WindowedRatio ratio(kWidth, /*num_windows=*/8, 0);
  ratio.Observe(100, 10, 20);   // head [0,1000): 10/20
  ratio.Observe(3500, 11, 60);  // 3-window gap; delta 1/40 -> head [3000,4000)
  // The head alone holds only the post-gap delta...
  EXPECT_NEAR(ratio.Ratio(3600, 1, -1.0), 1.0 / 40.0, 1e-9);
  // ...while a merge spanning the gap still sees both feeds.
  EXPECT_NEAR(ratio.Ratio(3600, 8, -1.0), 11.0 / 60.0, 1e-9);
}

TEST(WindowedRatioTest, FullRingLapDropsOldDeltasFromTheRatio) {
  // When the gap laps the ring, the pre-gap delta's window is cleared
  // before the new feed folds in: the ratio reflects only post-gap
  // traffic, not the cumulative totals.
  WindowedRatio ratio(kWidth, /*num_windows=*/4, 0);
  ratio.Observe(100, 9, 10);      // 0.9 hit rate before the gap
  ratio.Observe(10000, 10, 30);   // lap; delta 1/20 = 0.05
  EXPECT_NEAR(ratio.Ratio(10100, 4, -1.0), 1.0 / 20.0, 1e-9);
}

}  // namespace
}  // namespace obs
}  // namespace ossm
