#include "core/ossm_builder.h"

#include <gtest/gtest.h>

#include "datagen/quest_generator.h"
#include "datagen/skewed_generator.h"

namespace ossm {
namespace {

TransactionDatabase SmallQuest(uint64_t seed = 1) {
  QuestConfig config;
  config.num_items = 60;
  config.num_transactions = 4000;
  config.avg_transaction_size = 6;
  config.avg_pattern_size = 3;
  config.num_patterns = 15;
  config.seed = seed;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(OssmBuilderTest, AlgorithmNames) {
  EXPECT_EQ(SegmentationAlgorithmName(SegmentationAlgorithm::kRandom),
            "Random");
  EXPECT_EQ(SegmentationAlgorithmName(SegmentationAlgorithm::kRc), "RC");
  EXPECT_EQ(SegmentationAlgorithmName(SegmentationAlgorithm::kGreedy),
            "Greedy");
  EXPECT_EQ(SegmentationAlgorithmName(SegmentationAlgorithm::kRandomRc),
            "Random-RC");
  EXPECT_EQ(SegmentationAlgorithmName(SegmentationAlgorithm::kRandomGreedy),
            "Random-Greedy");
}

TEST(OssmBuilderTest, MakeSegmenterMatchesNames) {
  for (SegmentationAlgorithm algorithm :
       {SegmentationAlgorithm::kRandom, SegmentationAlgorithm::kRc,
        SegmentationAlgorithm::kGreedy, SegmentationAlgorithm::kRandomRc,
        SegmentationAlgorithm::kRandomGreedy}) {
    std::unique_ptr<Segmenter> segmenter = MakeSegmenter(algorithm);
    ASSERT_NE(segmenter, nullptr);
    EXPECT_EQ(segmenter->name(), SegmentationAlgorithmName(algorithm));
  }
}

TEST(OssmBuilderTest, BuildsRequestedSegmentCount) {
  TransactionDatabase db = SmallQuest();
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandom;
  options.target_segments = 12;
  options.transactions_per_page = 50;
  StatusOr<OssmBuildResult> result = BuildOssm(db, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->map.num_segments(), 12u);
  EXPECT_EQ(result->map.num_items(), db.num_items());
}

TEST(OssmBuilderTest, SingletonSupportsMatchDatabase) {
  TransactionDatabase db = SmallQuest();
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRc;
  options.target_segments = 8;
  options.transactions_per_page = 100;
  StatusOr<OssmBuildResult> result = BuildOssm(db, options);
  ASSERT_TRUE(result.ok());

  std::vector<uint64_t> supports = db.ComputeItemSupports();
  for (ItemId item = 0; item < db.num_items(); ++item) {
    EXPECT_EQ(result->map.Support(item), supports[item]) << "item " << item;
  }
}

TEST(OssmBuilderTest, PageAssignmentCoversAllPages) {
  TransactionDatabase db = SmallQuest();
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandomRc;
  options.target_segments = 6;
  options.intermediate_segments = 15;
  options.transactions_per_page = 80;
  StatusOr<OssmBuildResult> result = BuildOssm(db, options);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->page_to_segment.size(), result->layout.num_pages());
  std::vector<int> seen(result->map.num_segments(), 0);
  for (uint32_t seg : result->page_to_segment) {
    ASSERT_LT(seg, result->map.num_segments());
    seen[seg] = 1;
  }
  for (int s : seen) EXPECT_EQ(s, 1);  // every segment owns >= 1 page
}

TEST(OssmBuilderTest, AllAlgorithmsProduceValidMaps) {
  TransactionDatabase db = SmallQuest(3);
  std::vector<uint64_t> supports = db.ComputeItemSupports();
  for (SegmentationAlgorithm algorithm :
       {SegmentationAlgorithm::kRandom, SegmentationAlgorithm::kRc,
        SegmentationAlgorithm::kGreedy, SegmentationAlgorithm::kRandomRc,
        SegmentationAlgorithm::kRandomGreedy}) {
    OssmBuildOptions options;
    options.algorithm = algorithm;
    options.target_segments = 5;
    options.intermediate_segments = 10;
    options.transactions_per_page = 200;
    StatusOr<OssmBuildResult> result = BuildOssm(db, options);
    ASSERT_TRUE(result.ok()) << SegmentationAlgorithmName(algorithm);
    EXPECT_EQ(result->map.num_segments(), 5u);
    for (ItemId item = 0; item < db.num_items(); ++item) {
      EXPECT_EQ(result->map.Support(item), supports[item]);
    }
  }
}

TEST(OssmBuilderTest, BubbleFractionSpeedsUpGreedy) {
  TransactionDatabase db = SmallQuest(5);
  OssmBuildOptions full;
  full.algorithm = SegmentationAlgorithm::kGreedy;
  full.target_segments = 5;
  full.transactions_per_page = 50;

  OssmBuildOptions bubbled = full;
  bubbled.bubble_fraction = 0.1;
  bubbled.bubble_threshold = 0.01;

  StatusOr<OssmBuildResult> full_result = BuildOssm(db, full);
  StatusOr<OssmBuildResult> bubbled_result = BuildOssm(db, bubbled);
  ASSERT_TRUE(full_result.ok());
  ASSERT_TRUE(bubbled_result.ok());
  // Same number of ossub evaluations, but each is ~(0.1 m)^2 instead of
  // m^2; wall time must drop noticeably on any machine.
  EXPECT_EQ(bubbled_result->map.num_segments(), 5u);
  EXPECT_LT(bubbled_result->stats.seconds, full_result->stats.seconds);
}

TEST(OssmBuilderTest, MemoryFootprintScalesWithSegments) {
  TransactionDatabase db = SmallQuest(7);
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandom;
  options.transactions_per_page = 50;
  options.target_segments = 10;
  StatusOr<OssmBuildResult> ten = BuildOssm(db, options);
  options.target_segments = 20;
  StatusOr<OssmBuildResult> twenty = BuildOssm(db, options);
  ASSERT_TRUE(ten.ok());
  ASSERT_TRUE(twenty.ok());
  EXPECT_EQ(twenty->map.MemoryFootprintBytes(),
            2 * ten->map.MemoryFootprintBytes());
}

TEST(OssmBuilderTest, RejectsBadBubbleFraction) {
  TransactionDatabase db = SmallQuest(9);
  OssmBuildOptions options;
  options.bubble_fraction = 1.5;
  EXPECT_EQ(BuildOssm(db, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OssmBuilderTest, RejectsEmptyDatabase) {
  TransactionDatabase db(10);
  OssmBuildOptions options;
  EXPECT_EQ(BuildOssm(db, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RecommendStrategyTest, FollowsFigure7) {
  // Skewed data with a generous budget: Random suffices.
  EXPECT_EQ(RecommendStrategy(true, false, false),
            SegmentationAlgorithm::kRandom);
  EXPECT_EQ(RecommendStrategy(true, true, true),
            SegmentationAlgorithm::kRandom);
  // Segmentation cost no issue: pure Greedy.
  EXPECT_EQ(RecommendStrategy(false, false, false),
            SegmentationAlgorithm::kGreedy);
  EXPECT_EQ(RecommendStrategy(false, false, true),
            SegmentationAlgorithm::kGreedy);
  // Cost matters, very many pages: Random-RC.
  EXPECT_EQ(RecommendStrategy(false, true, true),
            SegmentationAlgorithm::kRandomRc);
  // Cost matters, moderate pages: Random-Greedy (or Random-RC if quality
  // preference is relaxed).
  EXPECT_EQ(RecommendStrategy(false, true, false),
            SegmentationAlgorithm::kRandomGreedy);
  EXPECT_EQ(RecommendStrategy(false, true, false, false),
            SegmentationAlgorithm::kRandomRc);
}

}  // namespace
}  // namespace ossm
