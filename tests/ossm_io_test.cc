#include "core/ossm_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "core/ossm_builder.h"
#include "datagen/quest_generator.h"

namespace ossm {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

SegmentSupportMap SampleMap() {
  std::vector<Segment> segments(3);
  segments[0].counts = {1, 2, 3, 4};
  segments[1].counts = {0, 0, 7, 1};
  segments[2].counts = {9, 9, 9, 9};
  return SegmentSupportMap::FromSegments(
      std::span<const Segment>(segments));
}

TEST(OssmIoTest, RoundTrip) {
  SegmentSupportMap map = SampleMap();
  std::string path = TempPath("map.ossm");
  ASSERT_TRUE(OssmIo::Save(map, path).ok());
  StatusOr<SegmentSupportMap> loaded = OssmIo::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, map);
  // Derived totals must be rebuilt on load.
  EXPECT_EQ(loaded->Support(2), map.Support(2));
}

TEST(OssmIoTest, RoundTripBuiltFromRealData) {
  QuestConfig config;
  config.num_items = 40;
  config.num_transactions = 1000;
  config.avg_transaction_size = 5;
  config.num_patterns = 10;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  ASSERT_TRUE(db.ok());
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandom;
  options.target_segments = 7;
  options.transactions_per_page = 50;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, options);
  ASSERT_TRUE(build.ok());

  std::string path = TempPath("real.ossm");
  ASSERT_TRUE(OssmIo::Save(build->map, path).ok());
  StatusOr<SegmentSupportMap> loaded = OssmIo::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, build->map);

  // Bounds computed from the reloaded map match bit for bit.
  Itemset pair = {3, 17};
  EXPECT_EQ(loaded->UpperBound(pair), build->map.UpperBound(pair));
}

TEST(OssmIoTest, RejectsWrongMagic) {
  std::string path = TempPath("bad.ossm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "DEFINITELY NOT A MAP FILE, JUST BYTES";
  }
  EXPECT_EQ(OssmIo::Load(path).status().code(), StatusCode::kCorruption);
}

TEST(OssmIoTest, DetectsTruncation) {
  SegmentSupportMap map = SampleMap();
  std::string path = TempPath("trunc.ossm");
  ASSERT_TRUE(OssmIo::Save(map, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() / 2);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  // Truncation after a valid magic is a malformed input, not bit rot.
  EXPECT_EQ(OssmIo::Load(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OssmIoTest, TruncationAtEveryPrefixNeverLoads) {
  SegmentSupportMap map = SampleMap();
  std::string path = TempPath("prefix.ossm");
  ASSERT_TRUE(OssmIo::Save(map, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    StatusOr<SegmentSupportMap> loaded = OssmIo::Load(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "prefix of " << len << " bytes: " << loaded.status().ToString();
  }
}

TEST(OssmIoTest, RejectsRetiredV1Format) {
  std::string path = TempPath("v1.ossm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "OSSMSM1\n";
    uint64_t header[2] = {4, 3};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
  }
  Status status = OssmIo::Load(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("v1"), std::string::npos);
}

TEST(OssmIoTest, RejectsForeignEndianFiles) {
  SegmentSupportMap map = SampleMap();
  std::string path = TempPath("endian.ossm");
  ASSERT_TRUE(OssmIo::Save(map, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Byte-swap the endianness mark in place, as a foreign-endian writer
  // would have laid it down.
  std::swap(bytes[8], bytes[11]);
  std::swap(bytes[9], bytes[10]);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  Status status = OssmIo::Load(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("endian"), std::string::npos);
}

TEST(OssmIoTest, DetectsBitFlip) {
  SegmentSupportMap map = SampleMap();
  std::string path = TempPath("flip.ossm");
  ASSERT_TRUE(OssmIo::Save(map, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() - 20] ^= 0x01;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_EQ(OssmIo::Load(path).status().code(), StatusCode::kCorruption);
}

TEST(OssmIoTest, MissingFileIsIOError) {
  EXPECT_EQ(OssmIo::Load("/nonexistent/x.ossm").status().code(),
            StatusCode::kIOError);
}

TEST(OssmIoTest, RejectsZeroSegments) {
  // Handcraft a header with zero segments.
  std::string path = TempPath("zeroseg.ossm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "OSSMSM2\n";
    uint32_t endian_mark = 0x4F53534DU;
    out.write(reinterpret_cast<const char*>(&endian_mark),
              sizeof(endian_mark));
    uint64_t header[2] = {4, 0};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    uint64_t checksum = 0;
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  }
  EXPECT_EQ(OssmIo::Load(path).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace ossm
