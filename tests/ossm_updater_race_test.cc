// Concurrency contract test (and TSan target): an OssmUpdater folding new
// pages into the served map through QueryEngine::WithMapExclusive while
// reader threads query. The engine's shared_mutex must keep this data-race
// free, and the answers must honor the contract pinned on OssmUpdater:
//   - exact/cache answers always match the immutable database;
//   - bound-rejects stay sound (bound < minsup and >= the exact support),
//     because appends only ever grow sup_hat;
//   - singleton answers track the map, so they are >= the database oracle
//     once appends land.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/ossm_builder.h"
#include "core/ossm_updater.h"
#include "datagen/quest_generator.h"
#include "serve/query_engine.h"

namespace ossm {
namespace serve {
namespace {

TEST(OssmUpdaterRaceTest, ConcurrentAppendsAndQueriesHonorTheContract) {
  QuestConfig config;
  config.num_items = 48;
  config.num_transactions = 1200;
  config.avg_transaction_size = 5;
  config.num_patterns = 10;
  config.seed = 17;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  ASSERT_TRUE(db.ok());
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandomGreedy;
  options.target_segments = 12;
  options.transactions_per_page = 100;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, options);
  ASSERT_TRUE(build.ok());
  SegmentSupportMap map = std::move(build->map);
  const uint32_t segments_before = map.num_segments();

  QueryEngineConfig engine_config;
  engine_config.min_support = 80;
  engine_config.cache_capacity = 128;  // small: force eviction traffic too
  QueryEngine engine(&*db, &map, engine_config);

  // Precompute the oracle for every itemset the readers will ask about.
  std::vector<Itemset> queries;
  for (ItemId a = 0; a < 48; a += 3) {
    queries.push_back({a});
    queries.push_back({a, static_cast<ItemId>((a + 13) % 48 < a
                                                  ? a + 1
                                                  : (a + 13))});
  }
  for (Itemset& q : queries) {
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
  }
  std::vector<uint64_t> oracle(queries.size(), 0);
  for (size_t i = 0; i < queries.size(); ++i) {
    for (uint64_t t = 0; t < db->num_transactions(); ++t) {
      if (db->Contains(t, queries[i])) ++oracle[i];
    }
  }

  constexpr int kAppends = 60;
  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 400;

  // The incoming page: a deterministic count vector over the item domain,
  // as PageLayout would produce for newly appended transactions.
  std::vector<uint64_t> page_counts(db->num_items(), 0);
  for (uint32_t i = 0; i < db->num_items(); ++i) {
    page_counts[i] = (i * 7 + 3) % 11;
  }

  std::atomic<bool> writer_failed{false};
  std::thread writer([&] {
    OssmUpdater updater(&map);
    for (int round = 0; round < kAppends; ++round) {
      engine.WithMapExclusive([&](SegmentSupportMap& locked_map) {
        (void)locked_map;  // same object the updater mutates
        StatusOr<uint32_t> segment = updater.AppendPage(
            page_counts, round % 2 == 0 ? AppendPolicy::kRoundRobin
                                        : AppendPolicy::kClosestFit);
        if (!segment.ok()) writer_failed.store(true);
      });
    }
  });

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int round = 0; round < kReadsPerReader; ++round) {
        size_t pick = static_cast<size_t>(r + round * 13) % queries.size();
        StatusOr<QueryResult> result = engine.Query(queries[pick]);
        if (!result.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        switch (result->tier) {
          case QueryTier::kExact:
          case QueryTier::kCacheHit:
            // The exact tiers read only the immutable database (and the
            // cache of its scans): always the oracle answer.
            if (result->support != oracle[pick]) mismatches.fetch_add(1);
            break;
          case QueryTier::kSingleton:
            // Tracks the map; appends only add to it.
            if (result->support < oracle[pick]) mismatches.fetch_add(1);
            break;
          case QueryTier::kBoundReject:
            // Sound iff below minsup while still bounding the database.
            if (result->support >= engine.min_support() ||
                result->support < oracle[pick]) {
              mismatches.fetch_add(1);
            }
            break;
        }
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();

  EXPECT_FALSE(writer_failed.load());
  EXPECT_EQ(mismatches.load(), 0u);
  // Appending never changes the segment count, and the engine still serves.
  EXPECT_EQ(engine.map_segments(), segments_before);
  EXPECT_TRUE(engine.Query(queries[0]).ok());
}

}  // namespace
}  // namespace serve
}  // namespace ossm
