#include "core/ossm_updater.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/ossm_builder.h"
#include "core/ossub.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "mining/candidate_pruner.h"

namespace ossm {
namespace {

SegmentSupportMap TwoSegmentMap() {
  std::vector<Segment> segments(2);
  segments[0].counts = {100, 10, 0};  // "item-0 heavy"
  segments[1].counts = {0, 10, 100};  // "item-2 heavy"
  return SegmentSupportMap::FromSegments(
      std::span<const Segment>(segments));
}

TEST(OssmUpdaterTest, RoundRobinCyclesSegments) {
  SegmentSupportMap map = TwoSegmentMap();
  OssmUpdater updater(&map);
  std::vector<uint64_t> page = {1, 1, 1};
  StatusOr<uint32_t> s0 = updater.AppendPage(page, AppendPolicy::kRoundRobin);
  StatusOr<uint32_t> s1 = updater.AppendPage(page, AppendPolicy::kRoundRobin);
  StatusOr<uint32_t> s2 = updater.AppendPage(page, AppendPolicy::kRoundRobin);
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s0, 0u);
  EXPECT_EQ(*s1, 1u);
  EXPECT_EQ(*s2, 0u);
}

TEST(OssmUpdaterTest, ClosestFitPicksTheMatchingSegment) {
  SegmentSupportMap map = TwoSegmentMap();
  OssmUpdater updater(&map);
  std::vector<uint64_t> item0_heavy = {50, 5, 0};
  std::vector<uint64_t> item2_heavy = {0, 5, 50};
  StatusOr<uint32_t> a =
      updater.AppendPage(item0_heavy, AppendPolicy::kClosestFit);
  StatusOr<uint32_t> b =
      updater.AppendPage(item2_heavy, AppendPolicy::kClosestFit);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
}

TEST(OssmUpdaterTest, TotalsStayExactAfterAppends) {
  SegmentSupportMap map = TwoSegmentMap();
  OssmUpdater updater(&map);
  std::vector<uint64_t> page = {7, 3, 2};
  ASSERT_TRUE(updater.AppendPage(page, AppendPolicy::kClosestFit).ok());
  EXPECT_EQ(map.Support(0), 107u);
  EXPECT_EQ(map.Support(1), 23u);
  EXPECT_EQ(map.Support(2), 102u);
}

TEST(OssmUpdaterTest, BoundsRemainValidAfterGrowth) {
  // Build a map over the first half of a collection, append the second
  // half page by page, and verify the grown map still upper-bounds every
  // pair support of the full collection (so pruning stays lossless).
  SkewedConfig gen;
  gen.num_items = 20;
  gen.num_transactions = 4000;
  gen.avg_transaction_size = 4;
  gen.seed = 3;
  StatusOr<TransactionDatabase> full = GenerateSkewed(gen);
  ASSERT_TRUE(full.ok());

  TransactionDatabase first_half(full->num_items());
  TransactionDatabase second_half(full->num_items());
  for (uint64_t t = 0; t < full->num_transactions(); ++t) {
    TransactionDatabase& target =
        (t < full->num_transactions() / 2) ? first_half : second_half;
    ASSERT_TRUE(target.Append(full->transaction(t)).ok());
  }

  OssmBuildOptions build_options;
  build_options.algorithm = SegmentationAlgorithm::kGreedy;
  build_options.target_segments = 6;
  build_options.transactions_per_page = 50;
  StatusOr<OssmBuildResult> build = BuildOssm(first_half, build_options);
  ASSERT_TRUE(build.ok());
  SegmentSupportMap map = build->map;

  StatusOr<PageLayout> layout = MakePageLayout(second_half, 50);
  ASSERT_TRUE(layout.ok());
  PageItemCounts pages(second_half, *layout);
  OssmUpdater updater(&map);
  StatusOr<std::vector<uint32_t>> assignment =
      updater.AppendPages(pages, AppendPolicy::kClosestFit);
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ(assignment->size(), pages.num_pages());
  EXPECT_EQ(map.num_segments(), 6u);  // footprint unchanged

  // Exact singletons over the grown collection.
  std::vector<uint64_t> supports = full->ComputeItemSupports();
  for (ItemId i = 0; i < full->num_items(); ++i) {
    EXPECT_EQ(map.Support(i), supports[i]);
  }
  // Valid pair bounds over the grown collection.
  for (ItemId a = 0; a < full->num_items(); ++a) {
    for (ItemId b = a + 1; b < full->num_items(); ++b) {
      Itemset pair = {a, b};
      uint64_t truth = 0;
      for (uint64_t t = 0; t < full->num_transactions(); ++t) {
        if (full->Contains(t, pair)) ++truth;
      }
      ASSERT_GE(map.UpperBoundPair(a, b), truth);
    }
  }
}

TEST(OssmUpdaterTest, ClosestFitPreservesContrastThatRoundRobinDestroys) {
  // Two anti-correlated segments. New pages arrive that match one side or
  // the other; closest-fit keeps each page with its kind, so the pair bound
  // stays tight; round-robin smears the two kinds together and loosens it.
  auto grow = [](AppendPolicy policy) {
    SegmentSupportMap map = TwoSegmentMap();  // (100,10,0) and (0,10,100)
    OssmUpdater updater(&map);
    std::vector<uint64_t> kind0 = {60, 6, 0};
    std::vector<uint64_t> kind2 = {0, 6, 60};
    // Arrival order deliberately misaligned with the segment cycle: two of
    // a kind in a row, so round-robin is forced to split each kind across
    // both segments.
    for (int round = 0; round < 4; ++round) {
      EXPECT_TRUE(updater.AppendPage(kind0, policy).ok());
      EXPECT_TRUE(updater.AppendPage(kind0, policy).ok());
      EXPECT_TRUE(updater.AppendPage(kind2, policy).ok());
      EXPECT_TRUE(updater.AppendPage(kind2, policy).ok());
    }
    return map.UpperBoundPair(0, 2);
  };
  uint64_t closest_bound = grow(AppendPolicy::kClosestFit);
  uint64_t round_robin_bound = grow(AppendPolicy::kRoundRobin);
  // Closest-fit: each segment stays single-kind, so min(item0, item2) is 0
  // in both segments.
  EXPECT_EQ(closest_bound, 0u);
  // Round-robin alternates kinds into both segments, creating overlap.
  EXPECT_GT(round_robin_bound, 0u);
}

TEST(OssmUpdaterTest, GrownMapStillPrunesLosslessly) {
  // Losslessness is unconditional: whatever the append policy and however
  // far the data drifts, mining with the grown map returns exactly the
  // patterns mined without it (quality may degrade — the bound only ever
  // loosens — but correctness never does).
  SkewedConfig gen;
  gen.num_items = 30;
  gen.num_transactions = 4000;
  gen.avg_transaction_size = 5;
  gen.in_season_boost = 8.0;
  gen.seed = 9;
  StatusOr<TransactionDatabase> full = GenerateSkewed(gen);
  ASSERT_TRUE(full.ok());

  TransactionDatabase first_half(full->num_items());
  TransactionDatabase rest(full->num_items());
  for (uint64_t t = 0; t < full->num_transactions(); ++t) {
    TransactionDatabase& target =
        (t < full->num_transactions() / 2) ? first_half : rest;
    ASSERT_TRUE(target.Append(full->transaction(t)).ok());
  }

  for (AppendPolicy policy :
       {AppendPolicy::kRoundRobin, AppendPolicy::kClosestFit}) {
    OssmBuildOptions build_options;
    build_options.algorithm = SegmentationAlgorithm::kRc;
    build_options.target_segments = 8;
    build_options.transactions_per_page = 50;
    StatusOr<OssmBuildResult> build = BuildOssm(first_half, build_options);
    ASSERT_TRUE(build.ok());
    SegmentSupportMap map = build->map;

    StatusOr<PageLayout> layout = MakePageLayout(rest, 50);
    ASSERT_TRUE(layout.ok());
    PageItemCounts pages(rest, *layout);
    OssmUpdater updater(&map);
    ASSERT_TRUE(updater.AppendPages(pages, policy).ok());

    OssmPruner pruner(&map);
    AprioriConfig with;
    with.min_support_fraction = 0.05;
    with.pruner = &pruner;
    AprioriConfig without;
    without.min_support_fraction = 0.05;

    StatusOr<MiningResult> a = MineApriori(*full, without);
    StatusOr<MiningResult> b = MineApriori(*full, with);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a->SamePatternsAs(*b));
  }
}

// Regression for the closest-fit hot path: it now reads segment columns in
// place (strided view over the item-major matrix) instead of extracting
// every column into a scratch vector per page. The picked segments and the
// final map must be exactly what the extraction-based loop produced.
TEST(OssmUpdaterTest, ClosestFitMatchesExtractionReference) {
  Rng rng(17);
  std::vector<Segment> segments(6);
  for (Segment& segment : segments) {
    segment.counts.resize(12);
    for (uint64_t& c : segment.counts) c = rng.UniformInt(200);
  }
  SegmentSupportMap map =
      SegmentSupportMap::FromSegments(std::span<const Segment>(segments));
  SegmentSupportMap reference_map = map;

  OssmUpdater updater(&map);
  for (int p = 0; p < 40; ++p) {
    std::vector<uint64_t> page(12);
    for (uint64_t& c : page) c = rng.UniformInt(50);

    // The pre-optimization loop, verbatim: extract each segment, evaluate
    // the pairwise loss on the copy, keep the first minimum.
    uint32_t expected = 0;
    uint64_t best_loss = UINT64_MAX;
    std::vector<uint64_t> extracted;
    for (uint32_t s = 0; s < reference_map.num_segments(); ++s) {
      reference_map.ExtractSegment(s, &extracted);
      uint64_t loss = PairwiseOssub(std::span<const uint64_t>(extracted),
                                    std::span<const uint64_t>(page));
      if (loss < best_loss) {
        best_loss = loss;
        expected = s;
      }
    }
    reference_map.AccumulateSegment(expected, page);

    StatusOr<uint32_t> picked =
        updater.AppendPage(page, AppendPolicy::kClosestFit);
    ASSERT_TRUE(picked.ok());
    EXPECT_EQ(*picked, expected) << "page " << p;
  }
  EXPECT_TRUE(map == reference_map);
}

TEST(OssmUpdaterTest, RejectsMismatchedDomain) {
  SegmentSupportMap map = TwoSegmentMap();
  OssmUpdater updater(&map);
  std::vector<uint64_t> wrong = {1, 2};
  EXPECT_EQ(updater.AppendPage(wrong, AppendPolicy::kRoundRobin)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(OssmUpdaterTest, NullMapDies) {
  EXPECT_DEATH(OssmUpdater(nullptr), "Check failed");
}

}  // namespace
}  // namespace ossm
