#include "core/ossub.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "core/configuration.h"

namespace ossm {
namespace {

Segment MakeSegment(std::vector<uint64_t> counts) {
  Segment seg;
  seg.counts = std::move(counts);
  return seg;
}

TEST(OssubTest, ZeroForIdenticalConfigurations) {
  // Lemma 2(a): same configuration => no loss.
  Segment a = MakeSegment({10, 5, 1});
  Segment b = MakeSegment({100, 50, 10});
  EXPECT_EQ(PairwiseOssub(a, b), 0u);
}

TEST(OssubTest, PositiveForDifferingConfigurations) {
  // Lemma 2(b): differing configurations => strictly positive loss.
  Segment a = MakeSegment({10, 0});
  Segment b = MakeSegment({0, 10});
  // merged = (10, 10): min = 10; kept: min(10,0)+min(0,10) = 0.
  EXPECT_EQ(PairwiseOssub(a, b), 10u);
}

TEST(OssubTest, MatchesHandComputedExample) {
  // Example 2's "slightly different" segmentation: S1 = (3, 1), S2 = (1, 2)
  // gives bound min(4,3) = 3 merged vs min(3,1)+min(1,2) = 2 kept: loss 1.
  Segment a = MakeSegment({3, 1});
  Segment b = MakeSegment({1, 2});
  EXPECT_EQ(PairwiseOssub(a, b), 1u);
}

TEST(OssubTest, SymmetricInTheTwoSegments) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint64_t> x(5);
    std::vector<uint64_t> y(5);
    for (size_t i = 0; i < 5; ++i) {
      x[i] = rng.UniformInt(50);
      y[i] = rng.UniformInt(50);
    }
    Segment a = MakeSegment(x);
    Segment b = MakeSegment(y);
    EXPECT_EQ(PairwiseOssub(a, b), PairwiseOssub(b, a));
  }
}

TEST(OssubTest, AgreesWithGeneralFormOnPairs) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Segment> segs;
    segs.push_back(MakeSegment({}));
    segs.push_back(MakeSegment({}));
    for (Segment& s : segs) {
      s.counts.resize(6);
      for (auto& c : s.counts) c = rng.UniformInt(30);
    }
    EXPECT_EQ(PairwiseOssub(segs[0], segs[1]),
              Ossub(std::span<const Segment>(segs)));
  }
}

TEST(OssubTest, MonotoneUnderSupersets) {
  // Lemma 2(c): ossub(A) <= ossub(A') for A subset of A'.
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Segment> small;
    for (int s = 0; s < 2; ++s) {
      Segment seg;
      seg.counts.resize(4);
      for (auto& c : seg.counts) c = rng.UniformInt(20);
      small.push_back(std::move(seg));
    }
    std::vector<Segment> big = small;
    Segment extra;
    extra.counts.resize(4);
    for (auto& c : extra.counts) c = rng.UniformInt(20);
    big.push_back(std::move(extra));

    EXPECT_LE(Ossub(std::span<const Segment>(small)),
              Ossub(std::span<const Segment>(big)))
        << "trial " << trial;
  }
}

TEST(OssubTest, GeneralFormZeroIffAllSameConfiguration) {
  std::vector<Segment> same;
  same.push_back(MakeSegment({6, 3, 1}));
  same.push_back(MakeSegment({12, 6, 2}));
  same.push_back(MakeSegment({60, 30, 10}));
  EXPECT_EQ(Ossub(std::span<const Segment>(same)), 0u);

  std::vector<Segment> mixed = same;
  mixed.push_back(MakeSegment({1, 3, 6}));
  EXPECT_GT(Ossub(std::span<const Segment>(mixed)), 0u);
}

TEST(OssubTest, BubbleRestrictsTheSummation) {
  Segment a = MakeSegment({10, 0, 7, 7});
  Segment b = MakeSegment({0, 10, 7, 7});
  // Full loss: pair (0,1) contributes 10; pairs with items 2,3 contribute
  // more. Restricting to bubble {2, 3} sees only the zero-loss pair.
  std::vector<ItemId> bubble = {2, 3};
  EXPECT_EQ(PairwiseOssub(a, b, bubble), 0u);
  EXPECT_GT(PairwiseOssub(a, b), 0u);

  std::vector<ItemId> bubble01 = {0, 1};
  EXPECT_EQ(PairwiseOssub(a, b, bubble01), 10u);
}

TEST(OssubTest, NonNegativeAlways) {
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    Segment a = MakeSegment({});
    Segment b = MakeSegment({});
    a.counts.resize(8);
    b.counts.resize(8);
    for (size_t i = 0; i < 8; ++i) {
      a.counts[i] = rng.UniformInt(100);
      b.counts[i] = rng.UniformInt(100);
    }
    // uint64 result would wrap on a negative; recompute in signed space.
    uint64_t loss = PairwiseOssub(a, b);
    EXPECT_LT(loss, uint64_t{1} << 62) << "wrapped below zero";
  }
}

TEST(OssubTest, RandomizedZeroLossCharacterization) {
  // Lemma 2(a): equal configurations imply zero loss. The exact zero-loss
  // condition is slightly weaker in the presence of ties: the loss is zero
  // iff no item pair is ordered strictly oppositely in the two segments
  // (a tie on one side is compatible with either strict order on the
  // other). Both directions are checked here.
  Rng rng(33);
  int zero_count = 0;
  for (int trial = 0; trial < 500; ++trial) {
    Segment a = MakeSegment({});
    Segment b = MakeSegment({});
    a.counts.resize(3);
    b.counts.resize(3);
    for (size_t i = 0; i < 3; ++i) {
      a.counts[i] = rng.UniformInt(4);
      b.counts[i] = rng.UniformInt(4);
    }
    bool zero_loss = PairwiseOssub(a, b) == 0;
    bool same_config =
        SameConfiguration(std::span<const uint64_t>(a.counts),
                          std::span<const uint64_t>(b.counts));
    bool weakly_compatible = true;
    for (size_t x = 0; x < 3; ++x) {
      for (size_t y = x + 1; y < 3; ++y) {
        bool a_less = a.counts[x] < a.counts[y];
        bool a_greater = a.counts[x] > a.counts[y];
        bool b_less = b.counts[x] < b.counts[y];
        bool b_greater = b.counts[x] > b.counts[y];
        if ((a_less && b_greater) || (a_greater && b_less)) {
          weakly_compatible = false;
        }
      }
    }
    EXPECT_EQ(zero_loss, weakly_compatible) << "trial " << trial;
    if (same_config) EXPECT_TRUE(zero_loss) << "trial " << trial;
    zero_count += zero_loss ? 1 : 0;
  }
  // Sanity: both outcomes exercised.
  EXPECT_GT(zero_count, 0);
  EXPECT_LT(zero_count, 500);
}

}  // namespace
}  // namespace ossm
