#include "data/page_layout.h"

#include <gtest/gtest.h>

namespace ossm {
namespace {

TransactionDatabase SmallDb() {
  TransactionDatabase db(4);
  // 7 transactions so the last page is short with page size 3.
  EXPECT_TRUE(db.Append({0, 1}).ok());
  EXPECT_TRUE(db.Append({1, 2}).ok());
  EXPECT_TRUE(db.Append({0}).ok());
  EXPECT_TRUE(db.Append({3}).ok());
  EXPECT_TRUE(db.Append({0, 3}).ok());
  EXPECT_TRUE(db.Append({2}).ok());
  EXPECT_TRUE(db.Append({1, 2, 3}).ok());
  return db;
}

TEST(PageLayoutTest, EvenSplit) {
  TransactionDatabase db = SmallDb();
  StatusOr<PageLayout> layout = MakePageLayout(db, 3);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->num_pages(), 3u);
  EXPECT_EQ(layout->page_size(0), 3u);
  EXPECT_EQ(layout->page_size(1), 3u);
  EXPECT_EQ(layout->page_size(2), 1u);  // short tail page
}

TEST(PageLayoutTest, OneTransactionPerPage) {
  TransactionDatabase db = SmallDb();
  StatusOr<PageLayout> layout = MakePageLayout(db, 1);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->num_pages(), db.num_transactions());
}

TEST(PageLayoutTest, PageLargerThanDatabase) {
  TransactionDatabase db = SmallDb();
  StatusOr<PageLayout> layout = MakePageLayout(db, 100);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->num_pages(), 1u);
  EXPECT_EQ(layout->page_size(0), 7u);
}

TEST(PageLayoutTest, RejectsZeroPageSize) {
  TransactionDatabase db = SmallDb();
  EXPECT_EQ(MakePageLayout(db, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PageLayoutTest, RejectsEmptyDatabase) {
  TransactionDatabase db(4);
  EXPECT_EQ(MakePageLayout(db, 3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PageItemCountsTest, AggregatesPerPage) {
  TransactionDatabase db = SmallDb();
  StatusOr<PageLayout> layout = MakePageLayout(db, 3);
  ASSERT_TRUE(layout.ok());
  PageItemCounts counts(db, *layout);
  ASSERT_EQ(counts.num_pages(), 3u);
  ASSERT_EQ(counts.num_items(), 4u);

  // Page 0 = {0,1}, {1,2}, {0}: item counts (2, 2, 1, 0).
  std::span<const uint64_t> page0 = counts.counts(0);
  EXPECT_EQ(page0[0], 2u);
  EXPECT_EQ(page0[1], 2u);
  EXPECT_EQ(page0[2], 1u);
  EXPECT_EQ(page0[3], 0u);

  // Page 2 = {1,2,3}: counts (0, 1, 1, 1).
  std::span<const uint64_t> page2 = counts.counts(2);
  EXPECT_EQ(page2[0], 0u);
  EXPECT_EQ(page2[1], 1u);
  EXPECT_EQ(page2[2], 1u);
  EXPECT_EQ(page2[3], 1u);
}

TEST(PageItemCountsTest, PageTotalsMatchGlobalSupports) {
  TransactionDatabase db = SmallDb();
  StatusOr<PageLayout> layout = MakePageLayout(db, 2);
  ASSERT_TRUE(layout.ok());
  PageItemCounts counts(db, *layout);

  std::vector<uint64_t> global = db.ComputeItemSupports();
  for (uint32_t i = 0; i < db.num_items(); ++i) {
    uint64_t sum = 0;
    for (uint64_t p = 0; p < counts.num_pages(); ++p) {
      sum += counts.counts(p)[i];
    }
    EXPECT_EQ(sum, global[i]) << "item " << i;
  }
}

TEST(PageItemCountsTest, PageTransactionsMatchLayout) {
  TransactionDatabase db = SmallDb();
  StatusOr<PageLayout> layout = MakePageLayout(db, 4);
  ASSERT_TRUE(layout.ok());
  PageItemCounts counts(db, *layout);
  EXPECT_EQ(counts.page_transactions(0), 4u);
  EXPECT_EQ(counts.page_transactions(1), 3u);
}

}  // namespace
}  // namespace ossm
