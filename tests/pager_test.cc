#include "storage/pager.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>

namespace ossm {
namespace storage {
namespace {

// ctest runs every gtest case as its own process; a shared file name would
// let one process truncate a file another still has mapped (SIGBUS). The
// pid keeps paths process-unique.
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + std::to_string(::getpid()) + "." + name;
}

Pager::Options SmallPages() {
  Pager::Options options;
  options.page_size = 4096;
  options.capacity_bytes = 64 << 20;
  return options;
}

TEST(PagerTest, CreateAllocateCommitReopen) {
  std::string path = TempPath("pager_basic.pgstore");
  auto created = Pager::Create(path, SmallPages());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::shared_ptr<Pager> pager = std::move(created).value();

  auto seg = pager->AllocateSegment(SegmentKind::kCsrItems, 6000);
  ASSERT_TRUE(seg.ok());
  const SegmentEntry& entry = pager->segment(seg.value());
  EXPECT_EQ(entry.kind, static_cast<uint32_t>(SegmentKind::kCsrItems));
  EXPECT_EQ(entry.num_pages, 2u);  // ceil(6000 / 4096)
  EXPECT_EQ(entry.used_bytes, 6000u);

  char* data = pager->SegmentData(seg.value());
  std::memset(data, 0x7E, 6000);
  pager->SetSegmentAux(seg.value(), 0, 42);
  pager->MarkDirty(pager->SegmentOffset(seg.value()), 6000);
  ASSERT_TRUE(pager->Commit().ok());
  pager.reset();

  auto reopened = Pager::Open(path, SmallPages());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::shared_ptr<Pager> back = std::move(reopened).value();
  EXPECT_FALSE(back->torn_tail_repaired());
  EXPECT_EQ(back->page_size(), 4096u);
  ASSERT_EQ(back->num_segments(), 1u);
  auto found = back->FindSegment(SegmentKind::kCsrItems);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(back->segment(*found).aux[0], 42u);
  const char* bytes = back->SegmentData(*found);
  for (int i = 0; i < 6000; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(bytes[i]), 0x7E) << i;
  }
  std::filesystem::remove(path);
}

TEST(PagerTest, OnlyTailSegmentGrows) {
  std::string path = TempPath("pager_grow.pgstore");
  auto created = Pager::Create(path, SmallPages());
  ASSERT_TRUE(created.ok());
  std::shared_ptr<Pager> pager = std::move(created).value();
  auto first = pager->AllocateSegment(SegmentKind::kCsrOffsets, 100);
  auto second = pager->AllocateSegment(SegmentKind::kCsrItems, 100);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Growing the non-tail segment would shift its neighbour.
  EXPECT_EQ(pager->GrowSegment(first.value(), 10000).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(pager->GrowSegment(second.value(), 10000).ok());
  EXPECT_EQ(pager->segment(second.value()).used_bytes, 10000u);
  pager.reset();
  std::filesystem::remove(path);
}

TEST(PagerTest, RejectsNonStoreFiles) {
  std::string path = TempPath("pager_notastore.pgstore");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::string junk(8192, 'j');
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  auto opened = Pager::Open(path, SmallPages());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().message().find("not an OSSM page store"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST(PagerTest, ShortFileIsInvalidArgument) {
  std::string path = TempPath("pager_short.pgstore");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("OSSMPG1\n", 1, 8, f);
    std::fclose(f);
  }
  auto opened = Pager::Open(path, SmallPages());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

// Builds a store with one committed data segment, then a second synced but
// UNCOMMITTED segment, leaving real uncommitted bytes on disk past the
// committed length. Returns the committed length via *committed.
std::string BuildStoreWithUncommittedTail(const std::string& name,
                                          uint64_t* committed) {
  std::string path = TempPath(name);
  auto created = Pager::Create(path, SmallPages());
  EXPECT_TRUE(created.ok());
  std::shared_ptr<Pager> pager = std::move(created).value();
  auto seg = pager->AllocateSegment(SegmentKind::kCsrItems, 4096);
  EXPECT_TRUE(seg.ok());
  std::memset(pager->SegmentData(seg.value()), 0x11, 4096);
  pager->MarkDirty(pager->SegmentOffset(seg.value()), 4096);
  EXPECT_TRUE(pager->Commit().ok());
  *committed = pager->committed_bytes();

  // Uncommitted growth: synced to disk, but the header still points at the
  // state above — exactly what a writer killed before Commit leaves behind.
  auto tail = pager->AllocateSegment(SegmentKind::kWal, 2 * 4096);
  EXPECT_TRUE(tail.ok());
  std::memset(pager->SegmentData(tail.value()), 0x22, 2 * 4096);
  pager->MarkDirty(pager->SegmentOffset(tail.value()), 2 * 4096);
  EXPECT_TRUE(pager->SyncDirty().ok());
  pager.reset();
  return path;
}

// Opens once and checks everything on that pager: Open REPAIRS a torn tail
// on disk, so a second Open would see a clean file and report no repair.
void ExpectCommittedStateIntact(const std::string& path, uint64_t committed,
                                bool expect_torn) {
  auto reopened = Pager::Open(path, SmallPages());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::shared_ptr<Pager> pager = std::move(reopened).value();
  EXPECT_EQ(pager->torn_tail_repaired(), expect_torn);
  EXPECT_EQ(pager->committed_bytes(), committed);
  EXPECT_EQ(pager->file_bytes(), committed);
  ASSERT_EQ(pager->num_segments(), 1u);
  const char* bytes = pager->SegmentData(0);
  for (int i = 0; i < 4096; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(bytes[i]), 0x11) << i;
  }
}

// The satellite property test: truncating anywhere inside the uncommitted
// tail must reopen cleanly with the committed prefix intact (the tail is
// torn and cut away), at EVERY byte offset.
TEST(PagerTest, TruncationAtEveryByteOfUncommittedTailReopensClean) {
  uint64_t committed = 0;
  std::string path =
      BuildStoreWithUncommittedTail("pager_tail.pgstore", &committed);
  uint64_t file_size = std::filesystem::file_size(path);
  ASSERT_GT(file_size, committed);

  std::string scratch = TempPath("pager_tail_cut.pgstore");
  for (uint64_t cut = committed; cut <= file_size; ++cut) {
    std::filesystem::copy_file(
        path, scratch, std::filesystem::copy_options::overwrite_existing);
    ASSERT_EQ(::truncate(scratch.c_str(), static_cast<off_t>(cut)), 0);
    SCOPED_TRACE("truncated at byte " + std::to_string(cut));
    ExpectCommittedStateIntact(scratch, committed,
                               /*expect_torn=*/cut > committed);
  }
  std::filesystem::remove(path);
  std::filesystem::remove(scratch);
}

// Truncation INSIDE the committed region is tampering, not a torn tail:
// refused as kInvalidArgument, mirroring ossm_io v2's taxonomy.
TEST(PagerTest, TruncationInsideCommittedRegionIsInvalidArgument) {
  uint64_t committed = 0;
  std::string path =
      BuildStoreWithUncommittedTail("pager_tamper.pgstore", &committed);
  std::string scratch = TempPath("pager_tamper_cut.pgstore");
  // Probe several cut points strictly inside the committed region but past
  // the header pages (cutting into the header itself degrades to "pick the
  // other slot" or a header-truncation error, which other tests cover).
  for (uint64_t cut = committed - 1; cut >= committed - 4096;
       cut -= 1337) {
    std::filesystem::copy_file(
        path, scratch, std::filesystem::copy_options::overwrite_existing);
    ASSERT_EQ(::truncate(scratch.c_str(), static_cast<off_t>(cut)), 0);
    auto reopened = Pager::Open(scratch, SmallPages());
    SCOPED_TRACE("truncated at byte " + std::to_string(cut));
    ASSERT_FALSE(reopened.ok());
    EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(
        reopened.status().message().find("truncated in the committed region"),
        std::string::npos)
        << reopened.status().ToString();
  }
  std::filesystem::remove(path);
  std::filesystem::remove(scratch);
}

TEST(PagerTest, CommitAlternatesHeaderSlotsAndSurvivesRepeatedReopen) {
  std::string path = TempPath("pager_pingpong.pgstore");
  auto created = Pager::Create(path, SmallPages());
  ASSERT_TRUE(created.ok());
  std::shared_ptr<Pager> pager = std::move(created).value();
  auto seg = pager->AllocateSegment(SegmentKind::kOssmCounts, 4096);
  ASSERT_TRUE(seg.ok());
  char* data = pager->SegmentData(seg.value());
  for (int round = 0; round < 5; ++round) {
    std::memset(data, round + 1, 4096);
    pager->MarkDirty(pager->SegmentOffset(seg.value()), 4096);
    ASSERT_TRUE(pager->Commit().ok());
    pager.reset();
    auto reopened = Pager::Open(path, SmallPages());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    pager = std::move(reopened).value();
    data = pager->SegmentData(0);
    ASSERT_EQ(data[100], round + 1) << "round " << round;
  }
  pager.reset();
  std::filesystem::remove(path);
}

TEST(PagerTest, DeleteOnCloseUnlinksTheFile) {
  std::string path = TempPath("pager_cache.pgstore");
  Pager::Options options = SmallPages();
  options.delete_on_close = true;
  auto created = Pager::Create(path, options);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(std::filesystem::exists(path));
  created.value().reset();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(PagerTest, PinAccountingIsBalanced) {
  std::string path = TempPath("pager_pin.pgstore");
  auto created = Pager::Create(path, SmallPages());
  ASSERT_TRUE(created.ok());
  std::shared_ptr<Pager> pager = std::move(created).value();
  auto seg = pager->AllocateSegment(SegmentKind::kBitmapRows, 4096);
  ASSERT_TRUE(seg.ok());
  {
    SegmentPin pin(pager, seg.value());
    EXPECT_EQ(pager->pinned_pages(), 1u);
    SegmentPin moved = std::move(pin);
    EXPECT_EQ(pager->pinned_pages(), 1u);
  }
  EXPECT_EQ(pager->pinned_pages(), 0u);
  pager.reset();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace storage
}  // namespace ossm
