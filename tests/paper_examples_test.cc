// Every worked example in the paper, encoded verbatim as a test.

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/ossub.h"
#include "core/segment_support_map.h"
#include "core/theory.h"

namespace ossm {
namespace {

Segment MakeSegment(std::vector<uint64_t> counts) {
  Segment seg;
  seg.counts = std::move(counts);
  return seg;
}

// ---- Example 1 (Section 3): the 4-segment OSSM over items a, b, c. ----

class PaperExample1 : public testing::Test {
 protected:
  void SetUp() override {
    std::vector<Segment> segments;
    segments.push_back(MakeSegment({20, 40, 40}));  // S1
    segments.push_back(MakeSegment({10, 40, 20}));  // S2
    segments.push_back(MakeSegment({40, 40, 20}));  // S3
    segments.push_back(MakeSegment({40, 10, 20}));  // S4
    map_ = SegmentSupportMap::FromSegments(
        std::span<const Segment>(segments));
  }
  SegmentSupportMap map_;
};

TEST_F(PaperExample1, TotalsMatchTheLastColumn) {
  EXPECT_EQ(map_.Support(0), 110u);
  EXPECT_EQ(map_.Support(1), 130u);
  EXPECT_EQ(map_.Support(2), 100u);
}

TEST_F(PaperExample1, BoundForABIs80) {
  // min(20,40) + min(10,40) + min(40,40) + min(40,10) = 80.
  Itemset ab = {0, 1};
  EXPECT_EQ(map_.UpperBound(ab), 80u);
}

TEST_F(PaperExample1, BoundForABCIs60) {
  Itemset abc = {0, 1, 2};
  EXPECT_EQ(map_.UpperBound(abc), 60u);
}

TEST_F(PaperExample1, WithoutTheOssmTheBoundsAre110And100) {
  SegmentSupportMap flat = SegmentSupportMap::SingleSegment({110, 130, 100});
  Itemset ab = {0, 1};
  Itemset abc = {0, 1, 2};
  EXPECT_EQ(flat.UpperBound(ab), 110u);
  EXPECT_EQ(flat.UpperBound(abc), 100u);
}

TEST_F(PaperExample1, FilteringExample) {
  // "...when the support threshold is less than 100": with threshold in
  // (80, 100], {a,b} and {a,b,c} are pruned by the OSSM but survive the
  // naive min-of-totals test.
  Itemset ab = {0, 1};
  Itemset abc = {0, 1, 2};
  uint64_t threshold = 90;
  SegmentSupportMap flat = SegmentSupportMap::SingleSegment({110, 130, 100});
  EXPECT_LT(map_.UpperBound(ab), threshold);
  EXPECT_LT(map_.UpperBound(abc), threshold);
  EXPECT_GE(flat.UpperBound(ab), threshold);
  EXPECT_GE(flat.UpperBound(abc), threshold);
}

// ---- Example 2 (Section 4.1): six transactions over items a, b. ----

class PaperExample2 : public testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<TransactionDatabase>(2);
    ASSERT_TRUE(db_->Append({0}).ok());     // t1 {a}
    ASSERT_TRUE(db_->Append({0, 1}).ok());  // t2 {a,b}
    ASSERT_TRUE(db_->Append({0}).ok());     // t3 {a}
    ASSERT_TRUE(db_->Append({0}).ok());     // t4 {a}
    ASSERT_TRUE(db_->Append({1}).ok());     // t5 {b}
    ASSERT_TRUE(db_->Append({1}).ok());     // t6 {b}
  }
  std::unique_ptr<TransactionDatabase> db_;
};

TEST_F(PaperExample2, TwoSegmentsSufficeAndAreExact) {
  // S1' = {t1..t4}: a=4, b=1 (config <a >= b>);
  // S2' = {t5, t6}: a=0, b=2 (config <b >= a>).
  std::vector<Segment> segments;
  segments.push_back(MakeSegment({4, 1}));
  segments.push_back(MakeSegment({0, 2}));
  SegmentSupportMap map =
      SegmentSupportMap::FromSegments(std::span<const Segment>(segments));
  Itemset ab = {0, 1};
  // min(4,1) + min(0,2) = 1 — exactly sup({a,b}).
  EXPECT_EQ(map.UpperBound(ab), 1u);
}

TEST_F(PaperExample2, MixingConfigurationsLosesExactness) {
  // "...suppose that the segmentation is done slightly differently — with
  // one transaction moved across. The resulting upper bound is ... 2, which
  // is no longer the exact support of {a,b}." Moving the b-only t5 into the
  // a-dominant segment: S1'' = {t1..t4, t5} (a=4, b=2), S2'' = {t6}
  // (a=0, b=1): min(4,2) + min(0,1) = 2 > 1.
  std::vector<Segment> segments;
  segments.push_back(MakeSegment({4, 2}));
  segments.push_back(MakeSegment({0, 1}));
  SegmentSupportMap map =
      SegmentSupportMap::FromSegments(std::span<const Segment>(segments));
  Itemset ab = {0, 1};
  EXPECT_EQ(map.UpperBound(ab), 2u);  // inexact: true support is 1
}

TEST_F(PaperExample2, MinimumSegmentsIsTwo) {
  EXPECT_EQ(MinimumSegments(*db_), 2u);
  EXPECT_EQ(ConfigurationSpaceSize(2), 2u);
}

TEST_F(PaperExample2, ExactConstructionRecoversThePaperSegmentation) {
  std::vector<Segment> exact = BuildExactSegments(*db_);
  ASSERT_EQ(exact.size(), 2u);
  // One segment holds the four a-dominant transactions, the other the two
  // b-only ones.
  std::sort(exact.begin(), exact.end(),
            [](const Segment& x, const Segment& y) {
              return x.num_transactions > y.num_transactions;
            });
  EXPECT_EQ(exact[0].counts, (std::vector<uint64_t>{4, 1}));
  EXPECT_EQ(exact[1].counts, (std::vector<uint64_t>{0, 2}));
}

// ---- Lemma 1 (Section 4.1): merging same-configuration segments. ----

TEST(PaperLemma1, MergePreservesBoundsForSameConfiguration) {
  Segment s1 = MakeSegment({9, 4});    // <a >= b>
  Segment s2 = MakeSegment({100, 7});  // <a >= b>
  Itemset ab = {0, 1};

  std::vector<Segment> separate;
  separate.push_back(s1);
  separate.push_back(s2);
  SegmentSupportMap fine =
      SegmentSupportMap::FromSegments(std::span<const Segment>(separate));

  Segment merged = s1;
  MergeSegmentInto(merged, std::move(s2));
  std::vector<Segment> combined;
  combined.push_back(std::move(merged));
  SegmentSupportMap coarse =
      SegmentSupportMap::FromSegments(std::span<const Segment>(combined));

  EXPECT_EQ(fine.UpperBound(ab), coarse.UpperBound(ab));
  EXPECT_EQ(fine.UpperBound(ab), 4u + 7u);
}

// ---- Section 4.2: merging differing configurations can lose accuracy. ----

TEST(PaperSection42, SwappedAdjacentItemsLoseAccuracyUnlessDegenerate) {
  // S1 with c1 >= c2, S2 with c2' >= c1': min(c1+c1', c2+c2') >=
  // min(c1,c2) + min(c1',c2'), strict unless c1 == c2 and c1' == c2'.
  Segment s1 = MakeSegment({5, 3});
  Segment s2 = MakeSegment({2, 6});
  EXPECT_GT(PairwiseOssub(s1, s2), 0u);

  Segment t1 = MakeSegment({4, 4});
  Segment t2 = MakeSegment({6, 6});
  EXPECT_EQ(PairwiseOssub(t1, t2), 0u);
}

// ---- Example 3 (Section 5.1): merged configuration can be brand new. ----

TEST(PaperExample3, MergedSegmentHasItsOwnConfiguration) {
  // S1: sup(a) >= sup(b) >= sup(c); S2: sup(c) >= sup(b) >= sup(a).
  Segment s1 = MakeSegment({10, 6, 2});
  Segment s2 = MakeSegment({1, 8, 9});
  Configuration c1 =
      Configuration::FromCounts(std::span<const uint64_t>(s1.counts));
  Configuration c2 =
      Configuration::FromCounts(std::span<const uint64_t>(s2.counts));

  Segment merged = s1;
  MergeSegmentInto(merged, std::move(s2));  // (11, 14, 11)
  Configuration cm =
      Configuration::FromCounts(std::span<const uint64_t>(merged.counts));
  // b now leads — an ordering neither input had.
  EXPECT_EQ(cm.order()[0], 1u);
  EXPECT_FALSE(cm == c1);
  EXPECT_FALSE(cm == c2);
}

// ---- Example 4 (Section 5.1): the combination explosion. ----

TEST(PaperExample4, CombinationCounts) {
  EXPECT_EQ(CountSegmentations(5, 3), 25u);
  EXPECT_EQ(CountSegmentations(6, 3), 90u);
  EXPECT_EQ(CountSegmentations(7, 3), 301u);
}

// ---- Theorem 1 / Corollary 1 headline numbers. ----

TEST(PaperTheorem1, GeneralCaseBound) {
  // "2^m - n" possible configurations: 2 items -> 2, 3 -> 5, 20 -> 1048556.
  EXPECT_EQ(ConfigurationSpaceSize(2), 2u);
  EXPECT_EQ(ConfigurationSpaceSize(3), 5u);
  EXPECT_EQ(ConfigurationSpaceSize(20), (uint64_t{1} << 20) - 20);
}

}  // namespace
}  // namespace ossm
