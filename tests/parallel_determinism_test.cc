// The determinism matrix the parallel subsystem promises: every miner, the
// OSSM build, and their stats are bit-identical for OSSM_THREADS = 1, 2, 8
// on the same workload. Thread counts are swept in-process through
// parallel::SetDefaultThreadCount (OSSM_THREADS is only read once).

#include <gtest/gtest.h>

#include <vector>

#include "core/ossm_builder.h"
#include "datagen/quest_generator.h"
#include "mining/apriori.h"
#include "mining/dhp.h"
#include "mining/eclat.h"
#include "mining/mining_result.h"
#include "mining/partition.h"
#include "parallel/thread_pool.h"

namespace ossm {
namespace {

constexpr uint32_t kThreadCounts[] = {1, 2, 8};

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QuestConfig gen;
    gen.num_items = 60;
    gen.num_transactions = 2000;
    gen.avg_transaction_size = 8.0;
    gen.avg_pattern_size = 3.0;
    gen.num_patterns = 20;
    gen.seed = 42;
    StatusOr<TransactionDatabase> db = GenerateQuest(gen);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_.emplace(std::move(*db));
  }

  void TearDown() override { parallel::SetDefaultThreadCount(1); }

  const TransactionDatabase& db() const { return *db_; }

  std::optional<TransactionDatabase> db_;
};

void ExpectSameResult(const MiningResult& base, const MiningResult& got,
                      uint32_t threads) {
  EXPECT_TRUE(base.SamePatternsAs(got)) << "threads=" << threads;
  EXPECT_EQ(base.itemsets, got.itemsets) << "threads=" << threads;
  EXPECT_EQ(base.stats.database_scans, got.stats.database_scans)
      << "threads=" << threads;
  ASSERT_EQ(base.stats.levels.size(), got.stats.levels.size())
      << "threads=" << threads;
  for (size_t l = 0; l < base.stats.levels.size(); ++l) {
    const LevelStats& a = base.stats.levels[l];
    const LevelStats& b = got.stats.levels[l];
    EXPECT_EQ(a.level, b.level) << "threads=" << threads << " level " << l;
    EXPECT_EQ(a.candidates_generated, b.candidates_generated)
        << "threads=" << threads << " level " << l;
    EXPECT_EQ(a.pruned_by_bound, b.pruned_by_bound)
        << "threads=" << threads << " level " << l;
    EXPECT_EQ(a.pruned_by_hash, b.pruned_by_hash)
        << "threads=" << threads << " level " << l;
    EXPECT_EQ(a.candidates_counted, b.candidates_counted)
        << "threads=" << threads << " level " << l;
    EXPECT_EQ(a.frequent, b.frequent) << "threads=" << threads << " level "
                                      << l;
  }
}

TEST_F(ParallelDeterminismTest, AprioriIsThreadCountInvariant) {
  AprioriConfig config;
  config.min_support_fraction = 0.02;
  MiningResult base;
  for (uint32_t threads : kThreadCounts) {
    parallel::SetDefaultThreadCount(threads);
    StatusOr<MiningResult> result = MineApriori(db(), config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->itemsets.empty());
    if (threads == 1) {
      base = std::move(*result);
    } else {
      ExpectSameResult(base, *result, threads);
    }
  }
}

TEST_F(ParallelDeterminismTest, DhpIsThreadCountInvariant) {
  DhpConfig config;
  config.min_support_fraction = 0.02;
  config.num_buckets = 512;
  MiningResult base;
  for (uint32_t threads : kThreadCounts) {
    parallel::SetDefaultThreadCount(threads);
    StatusOr<MiningResult> result = MineDhp(db(), config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->itemsets.empty());
    if (threads == 1) {
      base = std::move(*result);
    } else {
      ExpectSameResult(base, *result, threads);
    }
  }
}

TEST_F(ParallelDeterminismTest, EclatIsThreadCountInvariant) {
  EclatConfig config;
  config.min_support_fraction = 0.02;
  MiningResult base;
  for (uint32_t threads : kThreadCounts) {
    parallel::SetDefaultThreadCount(threads);
    StatusOr<MiningResult> result = MineEclat(db(), config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->itemsets.empty());
    if (threads == 1) {
      base = std::move(*result);
    } else {
      ExpectSameResult(base, *result, threads);
    }
  }
}

TEST_F(ParallelDeterminismTest, PartitionIsThreadCountInvariant) {
  PartitionConfig config;
  config.min_support_fraction = 0.02;
  config.num_partitions = 4;
  config.use_ossm = true;
  MiningResult base;
  for (uint32_t threads : kThreadCounts) {
    parallel::SetDefaultThreadCount(threads);
    StatusOr<MiningResult> result = MinePartition(db(), config, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->itemsets.empty());
    if (threads == 1) {
      base = std::move(*result);
    } else {
      ExpectSameResult(base, *result, threads);
    }
  }
}

TEST_F(ParallelDeterminismTest, BuildOssmGreedyIsThreadCountInvariant) {
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kGreedy;
  options.target_segments = 8;
  options.transactions_per_page = 25;  // 80 pages -> a real greedy run
  SegmentSupportMap base_map;
  std::vector<uint32_t> base_assignment;
  uint64_t base_evaluations = 0;
  for (uint32_t threads : kThreadCounts) {
    parallel::SetDefaultThreadCount(threads);
    StatusOr<OssmBuildResult> built = BuildOssm(db(), options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    if (threads == 1) {
      base_map = std::move(built->map);
      base_assignment = std::move(built->page_to_segment);
      base_evaluations = built->stats.ossub_evaluations;
    } else {
      // The map, the page partition, and even the evaluation count must not
      // depend on the thread count.
      EXPECT_TRUE(base_map == built->map) << "threads=" << threads;
      EXPECT_EQ(base_assignment, built->page_to_segment)
          << "threads=" << threads;
      EXPECT_EQ(base_evaluations, built->stats.ossub_evaluations)
          << "threads=" << threads;
    }
  }
}

TEST_F(ParallelDeterminismTest, ComputeItemSupportsIsThreadCountInvariant) {
  // Big enough to clear the parallel floor in ComputeItemSupports (2^16
  // stored items), so the sharded histogram path actually runs.
  TransactionDatabase big(16);
  for (uint64_t t = 0; t < 12000; ++t) {
    std::vector<ItemId> txn;
    for (ItemId i = 0; i < 16; ++i) {
      if ((t >> (i % 13)) & 1 || i % 3 == t % 3) txn.push_back(i);
    }
    ASSERT_TRUE(big.Append(txn).ok());
  }
  std::vector<uint64_t> base;
  for (uint32_t threads : kThreadCounts) {
    parallel::SetDefaultThreadCount(threads);
    std::vector<uint64_t> supports = big.ComputeItemSupports();
    if (threads == 1) {
      base = std::move(supports);
    } else {
      EXPECT_EQ(base, supports) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace ossm
