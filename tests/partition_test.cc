#include "mining/partition.h"

#include <gtest/gtest.h>

#include "datagen/quest_generator.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "tests/mining_test_util.h"

namespace ossm {
namespace {

TEST(PartitionTest, TinyDatabaseByHand) {
  TransactionDatabase db = test::TinyDb();
  PartitionConfig config;
  config.min_support_fraction = 0.5;  // 4 of 8
  config.num_partitions = 2;
  StatusOr<MiningResult> result = MinePartition(db, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<FrequentItemset> expected = {
      {{0}, 6}, {{1}, 6}, {{2}, 5}, {{0, 1}, 5}, {{0, 2}, 4}, {{1, 2}, 4},
  };
  EXPECT_EQ(result->itemsets, expected);
}

TEST(PartitionTest, MatchesBruteForceAcrossPartitionCounts) {
  QuestConfig gen;
  gen.num_items = 12;
  gen.num_transactions = 600;
  gen.avg_transaction_size = 4;
  gen.num_patterns = 5;
  gen.seed = 21;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());
  std::vector<FrequentItemset> expected =
      test::BruteForceFrequent(*db, 30);  // 5% of 600

  for (uint32_t partitions : {1u, 2u, 3u, 7u, 16u}) {
    PartitionConfig config;
    config.min_support_fraction = 0.05;
    config.num_partitions = partitions;
    StatusOr<MiningResult> result = MinePartition(*db, config);
    ASSERT_TRUE(result.ok()) << "partitions " << partitions;
    EXPECT_EQ(result->itemsets, expected) << "partitions " << partitions;
  }
}

TEST(PartitionTest, AgreesWithAprioriOnSkewedData) {
  // Skewed data is the adversarial case for Partition: locally frequent
  // itemsets abound in their season but are globally rare. Results must
  // still be identical.
  SkewedConfig gen;
  gen.num_items = 30;
  gen.num_transactions = 2000;
  gen.avg_transaction_size = 5;
  gen.seed = 23;
  StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
  ASSERT_TRUE(db.ok());

  AprioriConfig apriori_config;
  apriori_config.min_support_fraction = 0.03;
  PartitionConfig partition_config;
  partition_config.min_support_fraction = 0.03;
  partition_config.num_partitions = 4;

  StatusOr<MiningResult> a = MineApriori(*db, apriori_config);
  StatusOr<MiningResult> p = MinePartition(*db, partition_config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(a->SamePatternsAs(*p));
}

TEST(PartitionTest, OssmAssistKeepsResultsAndPrunesGlobals) {
  SkewedConfig gen;
  gen.num_items = 40;
  gen.num_transactions = 3000;
  gen.avg_transaction_size = 6;
  gen.seed = 25;
  StatusOr<TransactionDatabase> db = GenerateSkewed(gen);
  ASSERT_TRUE(db.ok());

  // Threshold between the in-season fraction (~0.27) and the global one
  // (~0.15): every seasonal item is locally frequent in its season's
  // partitions but globally infrequent — the exact singleton bounds of the
  // concatenated per-partition OSSMs catch all of them.
  PartitionConfig plain;
  plain.min_support_fraction = 0.2;
  plain.num_partitions = 4;
  PartitionConfig assisted = plain;
  assisted.use_ossm = true;
  assisted.ossm_segments_per_partition = 8;
  assisted.transactions_per_page = 50;

  PartitionRunInfo plain_info;
  PartitionRunInfo assisted_info;
  StatusOr<MiningResult> without = MinePartition(*db, plain, &plain_info);
  StatusOr<MiningResult> with = MinePartition(*db, assisted, &assisted_info);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(without->SamePatternsAs(*with));

  // On seasonal data some locally frequent candidates must be globally
  // hopeless; the global OSSM check should catch at least one.
  EXPECT_GT(assisted_info.global_candidates, 0u);
  EXPECT_GT(assisted_info.global_candidates_pruned_by_ossm, 0u);
  EXPECT_EQ(plain_info.global_candidates_pruned_by_ossm, 0u);
}

TEST(PartitionTest, SinglePartitionDegeneratesToApriori) {
  TransactionDatabase db = test::TinyDb();
  PartitionConfig config;
  config.min_support_fraction = 0.4;
  config.num_partitions = 1;
  AprioriConfig apriori_config;
  apriori_config.min_support_fraction = 0.4;

  StatusOr<MiningResult> p = MinePartition(db, config);
  StatusOr<MiningResult> a = MineApriori(db, apriori_config);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(p->SamePatternsAs(*a));
}

TEST(PartitionTest, RejectsZeroPartitions) {
  TransactionDatabase db = test::TinyDb();
  PartitionConfig config;
  config.num_partitions = 0;
  EXPECT_EQ(MinePartition(db, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionTest, RejectsMorePartitionsThanTransactions) {
  TransactionDatabase db = test::TinyDb();
  PartitionConfig config;
  config.num_partitions = 100;
  EXPECT_EQ(MinePartition(db, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionTest, RejectsBadFraction) {
  TransactionDatabase db = test::TinyDb();
  PartitionConfig config;
  config.min_support_fraction = 2.0;
  EXPECT_EQ(MinePartition(db, config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ossm
