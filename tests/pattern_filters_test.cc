#include "mining/pattern_filters.h"

#include <gtest/gtest.h>

#include "datagen/quest_generator.h"
#include "mining/apriori.h"
#include "mining/itemset.h"
#include "tests/mining_test_util.h"

namespace ossm {
namespace {

// TinyDb frequent itemsets at support 4:
// {0}:6 {1}:6 {2}:5 {0,1}:5 {0,2}:4 {1,2}:4.
std::vector<FrequentItemset> TinyFrequent() {
  return {
      {{0}, 6}, {{1}, 6}, {{2}, 5}, {{0, 1}, 5}, {{0, 2}, 4}, {{1, 2}, 4},
  };
}

TEST(ClosedItemsetsTest, DropsAbsorbedSets) {
  std::vector<FrequentItemset> closed = ClosedItemsets(TinyFrequent());
  // {1} (6) has superset {0,1} with support 5 != 6 -> closed.
  // {2} (5) has supersets at 4 -> closed. {0} (6): superset {0,1} at 5 ->
  // closed. All 2-sets closed (no 3-set). So everything is closed here.
  EXPECT_EQ(closed.size(), 6u);

  // Now make {0} absorbed: give {0,1} equal support.
  std::vector<FrequentItemset> frequent = {
      {{0}, 5}, {{1}, 6}, {{0, 1}, 5},
  };
  closed = ClosedItemsets(frequent);
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].items, (Itemset{1}));
  EXPECT_EQ(closed[1].items, (Itemset{0, 1}));
}

TEST(ClosedItemsetsTest, SupportsRecoverableFromClosure) {
  // Lossless property: every frequent itemset's support equals the max
  // support among its closed supersets.
  QuestConfig gen;
  gen.num_items = 12;
  gen.num_transactions = 400;
  gen.avg_transaction_size = 5;
  gen.num_patterns = 5;
  gen.corruption_mean = 0.2;
  gen.seed = 7;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());
  std::vector<FrequentItemset> frequent = test::BruteForceFrequent(*db, 20);
  std::vector<FrequentItemset> closed = ClosedItemsets(frequent);
  ASSERT_FALSE(closed.empty());
  EXPECT_LE(closed.size(), frequent.size());

  for (const FrequentItemset& f : frequent) {
    uint64_t recovered = 0;
    for (const FrequentItemset& c : closed) {
      if (IsSubsetOf(f.items, c.items)) {
        recovered = std::max(recovered, c.support);
      }
    }
    EXPECT_EQ(recovered, f.support);
  }
}

TEST(MaximalItemsetsTest, KeepsOnlyFrontier) {
  std::vector<FrequentItemset> maximal = MaximalItemsets(TinyFrequent());
  // All three 2-sets are maximal; no singleton is (each has a frequent
  // superset).
  ASSERT_EQ(maximal.size(), 3u);
  for (const FrequentItemset& m : maximal) {
    EXPECT_EQ(m.items.size(), 2u);
  }
}

TEST(MaximalItemsetsTest, MaximalSubsetOfClosed) {
  QuestConfig gen;
  gen.num_items = 12;
  gen.num_transactions = 400;
  gen.avg_transaction_size = 5;
  gen.num_patterns = 5;
  gen.seed = 9;
  StatusOr<TransactionDatabase> db = GenerateQuest(gen);
  ASSERT_TRUE(db.ok());
  std::vector<FrequentItemset> frequent = test::BruteForceFrequent(*db, 25);
  std::vector<FrequentItemset> closed = ClosedItemsets(frequent);
  std::vector<FrequentItemset> maximal = MaximalItemsets(frequent);

  // maximal ⊆ closed ⊆ frequent.
  EXPECT_LE(maximal.size(), closed.size());
  for (const FrequentItemset& m : maximal) {
    bool in_closed = false;
    for (const FrequentItemset& c : closed) {
      if (c.items == m.items) in_closed = true;
    }
    EXPECT_TRUE(in_closed);
  }
  // Every frequent itemset is a subset of some maximal one.
  for (const FrequentItemset& f : frequent) {
    bool covered = false;
    for (const FrequentItemset& m : maximal) {
      if (IsSubsetOf(f.items, m.items)) covered = true;
    }
    EXPECT_TRUE(covered);
  }
}

TEST(FilterByConstraintTest, RequiredItems) {
  ItemConstraint constraint;
  constraint.required = {0};
  StatusOr<std::vector<FrequentItemset>> kept =
      FilterByConstraint(TinyFrequent(), constraint);
  ASSERT_TRUE(kept.ok());
  ASSERT_EQ(kept->size(), 3u);  // {0}, {0,1}, {0,2}
  for (const FrequentItemset& f : *kept) {
    EXPECT_EQ(f.items[0], 0u);
  }
}

TEST(FilterByConstraintTest, ExcludedItems) {
  ItemConstraint constraint;
  constraint.excluded = {2};
  StatusOr<std::vector<FrequentItemset>> kept =
      FilterByConstraint(TinyFrequent(), constraint);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->size(), 3u);  // {0}, {1}, {0,1}
}

TEST(FilterByConstraintTest, SizeWindow) {
  ItemConstraint constraint;
  constraint.min_size = 2;
  constraint.max_size = 2;
  StatusOr<std::vector<FrequentItemset>> kept =
      FilterByConstraint(TinyFrequent(), constraint);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->size(), 3u);
  for (const FrequentItemset& f : *kept) {
    EXPECT_EQ(f.items.size(), 2u);
  }
}

TEST(FilterByConstraintTest, CombinedConstraints) {
  ItemConstraint constraint;
  constraint.required = {1};
  constraint.excluded = {2};
  constraint.min_size = 2;
  StatusOr<std::vector<FrequentItemset>> kept =
      FilterByConstraint(TinyFrequent(), constraint);
  ASSERT_TRUE(kept.ok());
  ASSERT_EQ(kept->size(), 1u);
  EXPECT_EQ((*kept)[0].items, (Itemset{0, 1}));
}

TEST(FilterByConstraintTest, RejectsMalformedConstraint) {
  ItemConstraint bad_required;
  bad_required.required = {3, 1};  // not increasing
  EXPECT_EQ(FilterByConstraint(TinyFrequent(), bad_required).status().code(),
            StatusCode::kInvalidArgument);

  ItemConstraint bad_window;
  bad_window.min_size = 3;
  bad_window.max_size = 2;
  EXPECT_EQ(FilterByConstraint(TinyFrequent(), bad_window).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FilterByConstraintTest, EmptyConstraintKeepsEverything) {
  ItemConstraint none;
  StatusOr<std::vector<FrequentItemset>> kept =
      FilterByConstraint(TinyFrequent(), none);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->size(), 6u);
}

}  // namespace
}  // namespace ossm
