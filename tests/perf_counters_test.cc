#include "obs/perf/perf_counters.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace ossm {
namespace obs {
namespace perf {
namespace {

// These tests must pass both on bare metal (PMU present) and in CI
// containers (perf_event_open denied or no PMU): nothing below asserts
// that a hardware counter actually counted, only that the degradation
// contract holds.

TEST(PerfReadingTest, EmptyReadingHasNothing) {
  PerfReading reading;
  EXPECT_FALSE(reading.AnyAvailable());
  EXPECT_FALSE(reading.HasIpc());
  EXPECT_EQ(reading.Ipc(), 0.0);
  for (size_t i = 0; i < kNumPerfCounters; ++i) {
    EXPECT_FALSE(reading.Has(static_cast<PerfCounter>(i)));
    EXPECT_EQ(reading.Value(static_cast<PerfCounter>(i)), 0u);
  }
}

TEST(PerfReadingTest, IpcNeedsBothCounters) {
  PerfReading reading;
  reading.available[static_cast<size_t>(PerfCounter::kCycles)] = true;
  reading.value[static_cast<size_t>(PerfCounter::kCycles)] = 1000;
  EXPECT_FALSE(reading.HasIpc());  // instructions missing

  reading.available[static_cast<size_t>(PerfCounter::kInstructions)] = true;
  reading.value[static_cast<size_t>(PerfCounter::kInstructions)] = 2500;
  EXPECT_TRUE(reading.HasIpc());
  EXPECT_DOUBLE_EQ(reading.Ipc(), 2.5);
  EXPECT_TRUE(reading.AnyAvailable());
}

TEST(PerfReadingTest, IpcWithZeroCyclesIsZeroNotNan) {
  PerfReading reading;
  reading.available[static_cast<size_t>(PerfCounter::kCycles)] = true;
  reading.available[static_cast<size_t>(PerfCounter::kInstructions)] = true;
  reading.value[static_cast<size_t>(PerfCounter::kInstructions)] = 10;
  EXPECT_EQ(reading.Ipc(), 0.0);
}

TEST(PerfReadingTest, MultiplexScaleIsOneWhenNeverDescheduled) {
  PerfReading reading;
  reading.time_enabled_ns = 1000;
  reading.time_running_ns = 1000;
  EXPECT_DOUBLE_EQ(reading.MultiplexScale(), 1.0);
  reading.time_running_ns = 250;
  EXPECT_DOUBLE_EQ(reading.MultiplexScale(), 4.0);
}

TEST(PerfCounterNameTest, NamesAreStableRegistrySuffixes) {
  EXPECT_EQ(PerfCounterName(PerfCounter::kCycles), "cycles");
  EXPECT_EQ(PerfCounterName(PerfCounter::kInstructions), "instructions");
  EXPECT_EQ(PerfCounterName(PerfCounter::kLlcMisses), "llc_misses");
  EXPECT_EQ(PerfCounterName(PerfCounter::kDtlbMisses), "dtlb_misses");
  EXPECT_EQ(PerfCounterName(PerfCounter::kTaskClockNs), "task_clock_ns");
}

TEST(PerfDeltaTest, SubtractsPerCounterAndSaturates) {
  PerfReading start, end;
  auto slot = [](PerfCounter c) { return static_cast<size_t>(c); };
  start.available[slot(PerfCounter::kCycles)] = true;
  start.value[slot(PerfCounter::kCycles)] = 100;
  end.available[slot(PerfCounter::kCycles)] = true;
  end.value[slot(PerfCounter::kCycles)] = 175;
  // A counter live only at the end (opened between readings) must not
  // produce a bogus giant delta.
  end.available[slot(PerfCounter::kContextSwitches)] = true;
  end.value[slot(PerfCounter::kContextSwitches)] = 7;
  start.time_enabled_ns = 10;
  end.time_enabled_ns = 50;

  PerfReading delta = Delta(start, end);
  EXPECT_TRUE(delta.Has(PerfCounter::kCycles));
  EXPECT_EQ(delta.Value(PerfCounter::kCycles), 75u);
  EXPECT_EQ(delta.time_enabled_ns, 40u);

  // Saturating: a reset/wrapped counter reads 0, not a huge unsigned.
  PerfReading wrapped = Delta(end, start);
  EXPECT_EQ(wrapped.Value(PerfCounter::kCycles), 0u);
}

TEST(PerfGroupTest, ForcedUnavailableBehavesLikeEpermContainer) {
  ForcePerfUnavailableForTest(true);
  {
    PerfCounterGroup group;
    EXPECT_FALSE(group.available());
    group.Start();  // all of these must be harmless no-ops
    PerfReading reading = group.Stop();
    EXPECT_FALSE(reading.AnyAvailable());
    EXPECT_FALSE(group.ReadNow().AnyAvailable());
  }
  EXPECT_FALSE(PerfCountersAvailable());
  EXPECT_FALSE(PerfUnavailableReason().empty());
  {
    InheritedPerfCounters inherited;
    EXPECT_FALSE(inherited.available());
    EXPECT_FALSE(inherited.ReadNow().AnyAvailable());
  }
  ForcePerfUnavailableForTest(false);
}

TEST(PerfGroupTest, GroupLifecycleMatchesProbe) {
  // Whatever the environment grants, the scoped group must agree with the
  // process-wide probe and never crash through a full lifecycle.
  PerfCounterGroup group;
  group.Start();
  // Burn a little CPU so live counters have something to count.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 100000; ++i) sink += i * i;
  PerfReading reading = group.Stop();
  if (group.available()) {
    EXPECT_TRUE(PerfCountersAvailable());
    EXPECT_TRUE(reading.AnyAvailable());
    // task-clock is a software event: when anything opened at all, the
    // software group essentially always does.
    if (reading.Has(PerfCounter::kTaskClockNs)) {
      EXPECT_GT(reading.Value(PerfCounter::kTaskClockNs), 0u);
    }
  } else {
    EXPECT_FALSE(reading.AnyAvailable());
  }
}

TEST(PerfPhaseTest, FinishIsEmptyWhenForcedUnavailable) {
  ForcePerfUnavailableForTest(true);
  PerfPhase phase;
  EXPECT_FALSE(phase.Finish().AnyAvailable());
  ForcePerfUnavailableForTest(false);
}

TEST(RecordPhasePerfTest, WritesOnlyAvailableSlotsUnderPhasePrefix) {
  EnableMetricsCollection();
  PerfReading delta;
  delta.available[static_cast<size_t>(PerfCounter::kCycles)] = true;
  delta.value[static_cast<size_t>(PerfCounter::kCycles)] = 123;
  delta.available[static_cast<size_t>(PerfCounter::kLlcMisses)] = true;
  delta.value[static_cast<size_t>(PerfCounter::kLlcMisses)] = 0;  // zero: skip
  RecordPhasePerf("unit_phase", delta);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool saw_cycles = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "perf.unit_phase.cycles") {
      saw_cycles = true;
      EXPECT_EQ(value, 123u);
    }
    EXPECT_NE(name, "perf.unit_phase.llc_misses");      // zero skipped
    EXPECT_NE(name, "perf.unit_phase.instructions");    // unavailable
  }
  EXPECT_TRUE(saw_cycles);
}

TEST(PerfSpansTest, DisabledWithoutEnv) {
  // The test binary does not set OSSM_PERF=spans; the span hook must be
  // off so TraceSpan stays zero-overhead by default.
  if (const char* env = std::getenv("OSSM_PERF");
      env != nullptr && std::string(env) == "spans") {
    GTEST_SKIP() << "OSSM_PERF=spans set in the environment";
  }
  EXPECT_FALSE(PerfSpansEnabled());
}

}  // namespace
}  // namespace perf
}  // namespace obs
}  // namespace ossm
