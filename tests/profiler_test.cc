#include "obs/perf/profiler.h"

#include <unistd.h>

#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace ossm {
namespace obs {
namespace perf {
namespace {

// Spins process CPU time so ITIMER_PROF (which counts CPU, not wall time)
// actually fires. Returns the sink to keep the loop un-optimizable.
uint64_t BurnCpu(double seconds) {
  volatile uint64_t sink = 0;
  double budget = seconds * 1e6;
  // ~1µs per inner chunk on anything modern; recheck the profiler's own
  // sample counter is cheaper than clock_gettime in a signal-heavy loop.
  for (double spent = 0; spent < budget; spent += 1.0) {
    for (int i = 0; i < 400; ++i) sink += sink * 31 + i;
  }
  return sink;
}

TEST(SamplingProfilerTest, CapturesAndFoldsStacks) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  ASSERT_FALSE(profiler.running());
  ASSERT_TRUE(profiler.Start(/*hz=*/500));
  EXPECT_TRUE(profiler.running());
  BurnCpu(0.3);
  std::string folded = profiler.Stop();
  EXPECT_FALSE(profiler.running());
  // 0.3s CPU at 500 Hz should land well over one sample even under load.
  EXPECT_GT(profiler.samples(), 0u);
  ASSERT_FALSE(folded.empty());

  // Every line must be flamegraph.pl input: "frame(;frame)* count".
  std::istringstream lines(folded);
  std::string line;
  uint64_t total = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    uint64_t count = std::stoull(line.substr(space + 1));
    EXPECT_GT(count, 0u) << line;
    total += count;
    // Frames never contain spaces or a stray separator at the edges.
    std::string stack = line.substr(0, space);
    EXPECT_EQ(stack.find(' '), std::string::npos) << line;
    EXPECT_NE(stack.front(), ';') << line;
    EXPECT_NE(stack.back(), ';') << line;
  }
  // Folding can discard malformed captures (depth <= 0) but never invents
  // samples.
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, profiler.samples() - profiler.dropped());
}

TEST(SamplingProfilerTest, SecondStartIsRejectedWhileRunning) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  ASSERT_TRUE(profiler.Start(97));
  EXPECT_FALSE(profiler.Start(97));  // process-global: one at a time
  profiler.Stop();
  // After Stop() the profiler is reusable.
  ASSERT_TRUE(profiler.Start(97));
  profiler.Stop();
}

TEST(SamplingProfilerTest, StopWithoutSamplesIsEmptyNotAnError) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  // 1 Hz and an immediate stop: no SIGPROF can have fired yet.
  ASSERT_TRUE(profiler.Start(1));
  std::string folded = profiler.Stop();
  EXPECT_TRUE(folded.empty());
  EXPECT_EQ(profiler.samples(), profiler.dropped());
}

}  // namespace
}  // namespace perf
}  // namespace obs
}  // namespace ossm
