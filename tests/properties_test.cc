// Property-based sweeps over the library's core invariants, parameterized
// over random seeds and dataset shapes (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/random.h"
#include "core/ossm_builder.h"
#include "core/segment_support_map.h"
#include "core/theory.h"
#include "datagen/alarm_generator.h"
#include "datagen/quest_generator.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "mining/candidate_pruner.h"

namespace ossm {
namespace {

enum class DataKind { kQuest, kSkewed, kAlarm };

TransactionDatabase MakeData(DataKind kind, uint64_t seed) {
  switch (kind) {
    case DataKind::kQuest: {
      QuestConfig config;
      config.num_items = 40;
      config.num_transactions = 1500;
      config.avg_transaction_size = 6;
      config.avg_pattern_size = 3;
      config.num_patterns = 10;
      config.seed = seed;
      StatusOr<TransactionDatabase> db = GenerateQuest(config);
      EXPECT_TRUE(db.ok());
      return std::move(db).value();
    }
    case DataKind::kSkewed: {
      SkewedConfig config;
      config.num_items = 40;
      config.num_transactions = 1500;
      config.avg_transaction_size = 6;
      config.seed = seed;
      StatusOr<TransactionDatabase> db = GenerateSkewed(config);
      EXPECT_TRUE(db.ok());
      return std::move(db).value();
    }
    case DataKind::kAlarm: {
      AlarmConfig config;
      config.num_alarm_types = 40;
      config.num_windows = 1500;
      config.seed = seed;
      StatusOr<TransactionDatabase> db = GenerateAlarms(config);
      EXPECT_TRUE(db.ok());
      return std::move(db).value();
    }
  }
  OSSM_CHECK(false);
  return TransactionDatabase(1);
}

uint64_t TrueSupport(const TransactionDatabase& db, const Itemset& items) {
  uint64_t count = 0;
  for (uint64_t t = 0; t < db.num_transactions(); ++t) {
    if (db.Contains(t, items)) ++count;
  }
  return count;
}

using BoundParams =
    std::tuple<DataKind, SegmentationAlgorithm, uint64_t /*segments*/>;

class BoundValidityTest : public testing::TestWithParam<BoundParams> {};

// The fundamental soundness property of equation (1): for every itemset,
// true support <= OSSM bound <= single-segment bound.
TEST_P(BoundValidityTest, BoundSandwich) {
  auto [kind, algorithm, segments] = GetParam();
  TransactionDatabase db = MakeData(kind, 42);

  OssmBuildOptions options;
  options.algorithm = algorithm;
  options.target_segments = segments;
  options.intermediate_segments = segments * 2;
  options.transactions_per_page = 30;
  StatusOr<OssmBuildResult> build = BuildOssm(db, options);
  ASSERT_TRUE(build.ok());
  const SegmentSupportMap& map = build->map;

  SegmentSupportMap flat =
      SegmentSupportMap::SingleSegment(db.ComputeItemSupports());

  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    size_t size = 2 + rng.UniformInt(4);
    Itemset items;
    while (items.size() < size) {
      ItemId item = static_cast<ItemId>(rng.UniformInt(db.num_items()));
      if (std::find(items.begin(), items.end(), item) == items.end()) {
        items.push_back(item);
      }
    }
    std::sort(items.begin(), items.end());

    uint64_t truth = TrueSupport(db, items);
    uint64_t bound = map.UpperBound(items);
    uint64_t flat_bound = flat.UpperBound(items);
    ASSERT_GE(bound, truth) << "bound must never undercut the support";
    ASSERT_LE(bound, flat_bound)
        << "segmentation must never be worse than no segmentation";
  }
}

std::string DataKindName(DataKind kind) {
  switch (kind) {
    case DataKind::kQuest:
      return "Quest";
    case DataKind::kSkewed:
      return "Skewed";
    case DataKind::kAlarm:
      return "Alarm";
  }
  return "Unknown";
}

std::string BoundParamsName(const testing::TestParamInfo<BoundParams>& info) {
  std::string name = DataKindName(std::get<0>(info.param));
  name += std::string(SegmentationAlgorithmName(std::get<1>(info.param)));
  name += "N" + std::to_string(std::get<2>(info.param));
  std::erase(name, '-');
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, BoundValidityTest,
    testing::Combine(testing::Values(DataKind::kQuest, DataKind::kSkewed,
                                     DataKind::kAlarm),
                     testing::Values(SegmentationAlgorithm::kRandom,
                                     SegmentationAlgorithm::kRc,
                                     SegmentationAlgorithm::kGreedy,
                                     SegmentationAlgorithm::kRandomRc,
                                     SegmentationAlgorithm::kRandomGreedy),
                     testing::Values(uint64_t{4}, uint64_t{12})),
    BoundParamsName);

// Refinement monotonicity: an OSSM with more segments (refining the same
// page order) never gives a looser bound than a coarser contiguous one.
class RefinementTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RefinementTest, ContiguousRefinementTightensBounds) {
  uint64_t seed = GetParam();
  TransactionDatabase db = MakeData(DataKind::kSkewed, seed);

  StatusOr<PageLayout> layout = MakePageLayout(db, 25);
  ASSERT_TRUE(layout.ok());
  PageItemCounts pages(db, *layout);
  std::vector<Segment> fine_segments = SegmentsFromPages(pages);

  // Coarse: fold pairs of adjacent fine segments together.
  std::vector<Segment> coarse_segments;
  for (size_t s = 0; s < fine_segments.size(); s += 2) {
    Segment merged = fine_segments[s];
    if (s + 1 < fine_segments.size()) {
      Segment copy = fine_segments[s + 1];
      MergeSegmentInto(merged, std::move(copy));
    }
    coarse_segments.push_back(std::move(merged));
  }

  SegmentSupportMap fine = SegmentSupportMap::FromSegments(
      std::span<const Segment>(SegmentsFromPages(pages)));
  SegmentSupportMap coarse = SegmentSupportMap::FromSegments(
      std::span<const Segment>(coarse_segments));

  Rng rng(seed * 31 + 1);
  for (int trial = 0; trial < 300; ++trial) {
    ItemId a = static_cast<ItemId>(rng.UniformInt(db.num_items()));
    ItemId b = static_cast<ItemId>(rng.UniformInt(db.num_items()));
    if (a == b) continue;
    EXPECT_LE(fine.UpperBoundPair(a, b), coarse.UpperBoundPair(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinementTest,
                         testing::Values(1, 2, 3, 4, 5));

// Lossless pruning, the user-facing contract: Apriori with any OSSM pruner
// mines exactly the same patterns as Apriori without one.
using LosslessParams = std::tuple<DataKind, uint64_t /*seed*/, double>;

class LosslessPruningTest : public testing::TestWithParam<LosslessParams> {};

TEST_P(LosslessPruningTest, PatternsIdenticalWithAndWithoutOssm) {
  auto [kind, seed, threshold] = GetParam();
  TransactionDatabase db = MakeData(kind, seed);

  OssmBuildOptions build_options;
  build_options.algorithm = SegmentationAlgorithm::kRandomGreedy;
  build_options.target_segments = 8;
  build_options.intermediate_segments = 16;
  build_options.transactions_per_page = 25;
  StatusOr<OssmBuildResult> build = BuildOssm(db, build_options);
  ASSERT_TRUE(build.ok());
  OssmPruner pruner(&build->map);

  AprioriConfig without;
  without.min_support_fraction = threshold;
  AprioriConfig with = without;
  with.pruner = &pruner;

  StatusOr<MiningResult> a = MineApriori(db, without);
  StatusOr<MiningResult> b = MineApriori(db, with);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->SamePatternsAs(*b));
  // Pruning may only ever reduce counting work.
  EXPECT_LE(b->stats.TotalCandidatesCounted(),
            a->stats.TotalCandidatesCounted());
}

std::string LosslessParamsName(
    const testing::TestParamInfo<LosslessParams>& info) {
  std::string name = DataKindName(std::get<0>(info.param));
  name += "S" + std::to_string(std::get<1>(info.param));
  name += std::get<2>(info.param) < 0.02 ? "T1pc" : "T5pc";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LosslessPruningTest,
    testing::Combine(testing::Values(DataKind::kQuest, DataKind::kSkewed,
                                     DataKind::kAlarm),
                     testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3}),
                     testing::Values(0.01, 0.05)),
    LosslessParamsName);

// Query independence (Section 3): one OSSM, built once, serves any support
// threshold without loss.
TEST(QueryIndependenceTest, OneMapManyThresholds) {
  TransactionDatabase db = MakeData(DataKind::kQuest, 77);
  OssmBuildOptions build_options;
  build_options.algorithm = SegmentationAlgorithm::kGreedy;
  build_options.target_segments = 10;
  build_options.transactions_per_page = 30;
  // Built with a bubble list tuned to 0.25%, as in Figure 6...
  build_options.bubble_fraction = 0.3;
  build_options.bubble_threshold = 0.0025;
  StatusOr<OssmBuildResult> build = BuildOssm(db, build_options);
  ASSERT_TRUE(build.ok());
  OssmPruner pruner(&build->map);

  // ...then queried at quite different thresholds.
  for (double threshold : {0.005, 0.01, 0.02, 0.08}) {
    AprioriConfig without;
    without.min_support_fraction = threshold;
    AprioriConfig with = without;
    with.pruner = &pruner;
    StatusOr<MiningResult> a = MineApriori(db, without);
    StatusOr<MiningResult> b = MineApriori(db, with);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a->SamePatternsAs(*b)) << "threshold " << threshold;
  }
}

// The skew claim (Section 3): "the more skewed the data, the more effective
// the OSSM" — a segmented map on seasonal data prunes more of the
// candidate space than on uniform data of the same shape.
TEST(SkewEffectivenessTest, SkewedDataPrunesMore) {
  SkewedConfig skewed_config;
  skewed_config.num_items = 40;
  skewed_config.num_transactions = 2000;
  skewed_config.avg_transaction_size = 6;
  skewed_config.in_season_boost = 10.0;
  skewed_config.seed = 5;
  StatusOr<TransactionDatabase> skewed = GenerateSkewed(skewed_config);
  ASSERT_TRUE(skewed.ok());

  SkewedConfig uniform_config = skewed_config;
  uniform_config.in_season_boost = 1.0;  // no seasons
  StatusOr<TransactionDatabase> uniform = GenerateSkewed(uniform_config);
  ASSERT_TRUE(uniform.ok());

  auto pruned_fraction = [](const TransactionDatabase& db) {
    OssmBuildOptions build_options;
    build_options.algorithm = SegmentationAlgorithm::kGreedy;
    build_options.target_segments = 10;
    build_options.transactions_per_page = 25;
    StatusOr<OssmBuildResult> build = BuildOssm(db, build_options);
    EXPECT_TRUE(build.ok());
    OssmPruner pruner(&build->map);
    AprioriConfig config;
    config.min_support_fraction = 0.02;
    config.pruner = &pruner;
    StatusOr<MiningResult> result = MineApriori(db, config);
    EXPECT_TRUE(result.ok());
    uint64_t generated = result->stats.GeneratedAtLevel(2);
    uint64_t pruned = 0;
    for (const LevelStats& l : result->stats.levels) {
      if (l.level == 2) pruned = l.pruned_by_bound;
    }
    return generated == 0
               ? 0.0
               : static_cast<double>(pruned) / static_cast<double>(generated);
  };

  EXPECT_GT(pruned_fraction(*skewed), pruned_fraction(*uniform));
}

}  // namespace
}  // namespace ossm
