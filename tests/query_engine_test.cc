#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/ossm_builder.h"
#include "datagen/quest_generator.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"
#include "serve/telemetry.h"

namespace ossm {
namespace serve {
namespace {

// Forces OSSM_METRICS on for the test's scope via the mode-cache hook.
class ScopedMetricsOn {
 public:
  ScopedMetricsOn()
      : saved_(obs::internal::g_mode_cache.exchange(
            static_cast<int>(obs::ExportMode::kText))) {}
  ~ScopedMetricsOn() { obs::internal::g_mode_cache.store(saved_); }

 private:
  int saved_;
};

struct Fixture {
  TransactionDatabase db;
  SegmentSupportMap map;
};

Fixture MakeFixture() {
  QuestConfig config;
  config.num_items = 50;
  config.num_transactions = 2000;
  config.avg_transaction_size = 6;
  config.num_patterns = 12;
  config.seed = 11;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  OSSM_CHECK(db.ok());
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandomGreedy;
  options.target_segments = 16;
  options.transactions_per_page = 100;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, options);
  OSSM_CHECK(build.ok());
  return Fixture{std::move(*db), std::move(build->map)};
}

uint64_t OracleSupport(const TransactionDatabase& db,
                       const Itemset& itemset) {
  uint64_t support = 0;
  for (uint64_t t = 0; t < db.num_transactions(); ++t) {
    if (db.Contains(t, itemset)) ++support;
  }
  return support;
}

TEST(QueryEngineTest, RejectsMalformedItemsets) {
  Fixture fx = MakeFixture();
  QueryEngine engine(&fx.db, &fx.map, QueryEngineConfig{});
  EXPECT_EQ(engine.Query(Itemset{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Query(Itemset{3, 2}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Query(Itemset{4, 4}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Query(Itemset{1000}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, SingletonTierIsExact) {
  Fixture fx = MakeFixture();
  QueryEngineConfig config;
  config.min_support = 1;
  QueryEngine engine(&fx.db, &fx.map, config);
  std::vector<uint64_t> supports = fx.db.ComputeItemSupports();
  for (ItemId item = 0; item < fx.db.num_items(); item += 7) {
    StatusOr<QueryResult> result = engine.Query(Itemset{item});
    ASSERT_TRUE(result.ok());
    if (result->tier == QueryTier::kBoundReject) {
      // Support 0 items can be bound-rejected; the bound is still exact.
      EXPECT_EQ(supports[item], 0u);
      continue;
    }
    EXPECT_EQ(result->tier, QueryTier::kSingleton);
    EXPECT_EQ(result->support, supports[item]);
  }
}

TEST(QueryEngineTest, BoundRejectIsSoundAndBelowMinsup) {
  Fixture fx = MakeFixture();
  QueryEngineConfig config;
  config.min_support = fx.db.num_transactions();  // everything rejects
  QueryEngine engine(&fx.db, &fx.map, config);
  uint64_t rejects = 0;
  for (ItemId a = 0; a < 20; ++a) {
    Itemset pair = {a, static_cast<ItemId>(a + 20)};
    StatusOr<QueryResult> result = engine.Query(pair);
    ASSERT_TRUE(result.ok());
    if (result->tier != QueryTier::kBoundReject) continue;
    ++rejects;
    EXPECT_FALSE(result->frequent);
    EXPECT_LT(result->support, config.min_support);
    // Equation (1) is an upper bound: the exact support never exceeds it.
    EXPECT_LE(OracleSupport(fx.db, pair), result->support);
  }
  EXPECT_GT(rejects, 0u);
  EXPECT_EQ(engine.Stats().bound_rejects, rejects);
}

TEST(QueryEngineTest, ExactThenCacheHitAgree) {
  Fixture fx = MakeFixture();
  QueryEngineConfig config;
  config.min_support = 1;  // no rejects: force the exact tier
  QueryEngine engine(&fx.db, &fx.map, config);
  Itemset pair = {3, 17};
  StatusOr<QueryResult> first = engine.Query(pair);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->tier, QueryTier::kExact);
  EXPECT_EQ(first->support, OracleSupport(fx.db, pair));

  StatusOr<QueryResult> second = engine.Query(pair);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->tier, QueryTier::kCacheHit);
  EXPECT_EQ(second->support, first->support);
  EXPECT_EQ(engine.Stats().cache_hits, 1u);
}

TEST(QueryEngineTest, WorksWithoutAMap) {
  Fixture fx = MakeFixture();
  QueryEngineConfig config;
  config.min_support = 50;
  QueryEngine engine(&fx.db, nullptr, config);
  EXPECT_FALSE(engine.has_map());
  EXPECT_EQ(engine.map_segments(), 0u);
  Itemset single = {5};
  StatusOr<QueryResult> result = engine.Query(single);
  ASSERT_TRUE(result.ok());
  // Even without a map, singletons answer from the database's own row
  // totals — never from the exact tier.
  EXPECT_EQ(result->tier, QueryTier::kSingleton);
  EXPECT_EQ(result->support, OracleSupport(fx.db, single));
  Itemset pair = {5, 9};
  StatusOr<QueryResult> exact = engine.Query(pair);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->tier, QueryTier::kExact);
  EXPECT_EQ(exact->support, OracleSupport(fx.db, pair));
}

TEST(QueryEngineTest, MapFreeSingletonFastPathAttributesTier) {
  // Regression: singleton queries against a map-free engine used to fall
  // through to the LRU/exact tiers even though the immutable database's
  // row totals answer them exactly.
  Fixture fx = MakeFixture();
  QueryEngineConfig config;
  config.min_support = 10;
  QueryEngine engine(&fx.db, nullptr, config);
  std::vector<uint64_t> supports = fx.db.ComputeItemSupports();
  for (ItemId item = 0; item < fx.db.num_items(); ++item) {
    StatusOr<QueryResult> result = engine.Query(Itemset{item});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->tier, QueryTier::kSingleton) << "item " << item;
    EXPECT_EQ(result->support, supports[item]) << "item " << item;
    // Repeats must stay singleton hits, not turn into cache hits.
    StatusOr<QueryResult> again = engine.Query(Itemset{item});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->tier, QueryTier::kSingleton) << "item " << item;
  }
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.singleton_hits, 2u * fx.db.num_items());
  EXPECT_EQ(stats.exact_counts, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(engine.cache().size(), 0u);  // never occupies the LRU
}

TEST(QueryEngineTest, BatchMatchesSerialQueries) {
  Fixture fx = MakeFixture();
  QueryEngineConfig config;
  config.min_support = 40;
  std::vector<Itemset> queries;
  for (ItemId a = 0; a < 30; ++a) {
    queries.push_back({a});
    queries.push_back({a, static_cast<ItemId>(a + 11)});
  }
  queries.push_back({2, 13});  // duplicate of an earlier pair
  queries.push_back({2, 13});

  QueryEngine serial(&fx.db, &fx.map, config);
  std::vector<QueryResult> expected;
  for (const Itemset& q : queries) {
    StatusOr<QueryResult> result = serial.Query(q);
    ASSERT_TRUE(result.ok());
    expected.push_back(*result);
  }

  QueryEngine batched(&fx.db, &fx.map, config);
  StatusOr<std::vector<QueryResult>> results = batched.QueryBatch(queries);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ((*results)[i].support, expected[i].support) << "query " << i;
    EXPECT_EQ((*results)[i].frequent, expected[i].frequent) << "query " << i;
  }
}

TEST(QueryEngineTest, BatchIsBitIdenticalAcrossThreadCounts) {
  Fixture fx = MakeFixture();
  QueryEngineConfig config;
  config.min_support = 30;
  std::vector<Itemset> queries;
  for (ItemId a = 0; a < 25; ++a) {
    queries.push_back({a, static_cast<ItemId>(a + 9),
                       static_cast<ItemId>(a + 21)});
  }

  std::vector<std::vector<QueryResult>> runs;
  for (uint32_t threads : {1u, 4u}) {
    parallel::SetDefaultThreadCount(threads);
    QueryEngine engine(&fx.db, &fx.map, config);
    StatusOr<std::vector<QueryResult>> results = engine.QueryBatch(queries);
    ASSERT_TRUE(results.ok());
    runs.push_back(std::move(*results));
  }
  parallel::SetDefaultThreadCount(parallel::DefaultThreadCount());
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].support, runs[1][i].support) << "query " << i;
    EXPECT_EQ(runs[0][i].tier, runs[1][i].tier) << "query " << i;
  }
}

TEST(QueryEngineTest, BatchErrorNamesTheBadItemset) {
  Fixture fx = MakeFixture();
  QueryEngine engine(&fx.db, &fx.map, QueryEngineConfig{});
  std::vector<Itemset> queries = {{1}, {2, 3}, {9, 4}};  // index 2 unsorted
  StatusOr<std::vector<QueryResult>> results = engine.QueryBatch(queries);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(results.status().message().find("itemset 2"), std::string::npos)
      << results.status().ToString();
}

TEST(QueryEngineTest, StatsTallyEveryTier) {
  Fixture fx = MakeFixture();
  QueryEngineConfig config;
  config.min_support = 200;
  QueryEngine engine(&fx.db, &fx.map, config);
  uint64_t issued = 0;
  for (ItemId a = 0; a < 40; ++a) {
    ASSERT_TRUE(engine.Query(Itemset{a, static_cast<ItemId>(a + 5)}).ok());
    ++issued;
  }
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries, issued);
  EXPECT_EQ(stats.bound_rejects + stats.singleton_hits + stats.cache_hits +
                stats.exact_counts,
            issued);
}

TEST(QueryEngineTest, BatchRecordsTierLatenciesInBothSinks) {
  // Regression: QueryBatch used to feed tier latencies only into the
  // serving telemetry — the OSSM_METRICS serve.tier.* histograms never saw
  // batched tier-1/2 answers (or exact ones). Both sinks must record,
  // exactly as Query() does.
  ScopedMetricsOn metrics_on;
  Fixture fx = MakeFixture();
  ServeTelemetry telemetry{ServeTelemetry::Config{}};
  QueryEngineConfig config;
  config.min_support = 40;
  config.telemetry = &telemetry;
  QueryEngine engine(&fx.db, &fx.map, config);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t singleton_before =
      registry.GetHistogram("serve.tier.singleton_us").count();
  const uint64_t exact_before =
      registry.GetHistogram("serve.tier.exact_us").count();

  std::vector<Itemset> queries;
  for (ItemId a = 0; a < 10; ++a) {
    queries.push_back({a});                                // tier singleton
    queries.push_back({a, static_cast<ItemId>(a + 13)});   // reject or exact
  }
  StatusOr<std::vector<QueryResult>> results = engine.QueryBatch(queries);
  ASSERT_TRUE(results.ok());

  uint64_t singletons = 0;
  uint64_t exacts = 0;
  for (const QueryResult& r : *results) {
    singletons += r.tier == QueryTier::kSingleton ? 1 : 0;
    exacts += r.tier == QueryTier::kExact ? 1 : 0;
  }
  ASSERT_GT(singletons, 0u);
  ASSERT_GT(exacts, 0u);
  // OSSM_METRICS sink: one record per answered query, per tier.
  EXPECT_EQ(registry.GetHistogram("serve.tier.singleton_us").count() -
                singleton_before,
            singletons);
  EXPECT_EQ(registry.GetHistogram("serve.tier.exact_us").count() -
                exact_before,
            exacts);
  // Serving-telemetry sink: same tallies.
  EXPECT_EQ(telemetry.tier_histogram(QueryTier::kSingleton).count(),
            singletons);
  EXPECT_EQ(telemetry.tier_histogram(QueryTier::kExact).count(), exacts);
}

TEST(QueryEngineTest, BatchRecordsRequestsForDirectCallers) {
  // Regression: direct QueryBatch callers never reached RecordRequest, so
  // batched traffic was invisible to the request histogram/qps window. The
  // default options record one request per submitted itemset (duplicates
  // included); the Batcher opts out and records its own.
  Fixture fx = MakeFixture();
  ServeTelemetry telemetry{ServeTelemetry::Config{}};
  QueryEngineConfig config;
  config.min_support = 40;
  config.telemetry = &telemetry;
  QueryEngine engine(&fx.db, &fx.map, config);

  std::vector<Itemset> queries = {{1}, {2, 7}, {2, 7}, {3, 9, 21}};
  ASSERT_TRUE(engine.QueryBatch(queries).ok());
  EXPECT_EQ(telemetry.request_histogram().count(), queries.size());

  QueryBatchOptions opt_out;
  opt_out.record_requests = false;
  ASSERT_TRUE(engine.QueryBatch(queries, opt_out).ok());
  EXPECT_EQ(telemetry.request_histogram().count(), queries.size());
}

}  // namespace
}  // namespace serve
}  // namespace ossm
