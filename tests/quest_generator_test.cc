#include "datagen/quest_generator.h"

#include <gtest/gtest.h>

#include <numeric>

namespace ossm {
namespace {

QuestConfig SmallConfig() {
  QuestConfig config;
  config.num_items = 100;
  config.num_transactions = 5000;
  config.avg_transaction_size = 8.0;
  config.avg_pattern_size = 3.0;
  config.num_patterns = 30;
  config.seed = 7;
  return config;
}

TEST(QuestGeneratorTest, ProducesRequestedShape) {
  StatusOr<TransactionDatabase> db = GenerateQuest(SmallConfig());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->num_items(), 100u);
  EXPECT_EQ(db->num_transactions(), 5000u);
}

TEST(QuestGeneratorTest, TransactionsAreCanonical) {
  StatusOr<TransactionDatabase> db = GenerateQuest(SmallConfig());
  ASSERT_TRUE(db.ok());
  for (uint64_t t = 0; t < db->num_transactions(); ++t) {
    std::span<const ItemId> txn = db->transaction(t);
    EXPECT_FALSE(txn.empty());
    for (size_t i = 1; i < txn.size(); ++i) {
      EXPECT_LT(txn[i - 1], txn[i]);
    }
  }
}

TEST(QuestGeneratorTest, AverageSizeIsInTheRightBallpark) {
  StatusOr<TransactionDatabase> db = GenerateQuest(SmallConfig());
  ASSERT_TRUE(db.ok());
  double avg = static_cast<double>(db->total_item_occurrences()) /
               static_cast<double>(db->num_transactions());
  // Corruption and dedup shrink transactions below the Poisson target, and
  // the overflow rule can overshoot; just require the right ballpark.
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 16.0);
}

TEST(QuestGeneratorTest, DeterministicForSameSeed) {
  StatusOr<TransactionDatabase> a = GenerateQuest(SmallConfig());
  StatusOr<TransactionDatabase> b = GenerateQuest(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(QuestGeneratorTest, DifferentSeedsGiveDifferentData) {
  QuestConfig config = SmallConfig();
  StatusOr<TransactionDatabase> a = GenerateQuest(config);
  config.seed = 8;
  StatusOr<TransactionDatabase> b = GenerateQuest(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(*a == *b);
}

TEST(QuestGeneratorTest, PatternsInduceCorrelation) {
  // With few strong patterns, some pairs of items must co-occur far more
  // often than independence predicts. Compare the max observed pair count
  // to the expectation under independence.
  QuestConfig config = SmallConfig();
  config.num_patterns = 5;
  config.corruption_mean = 0.1;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  ASSERT_TRUE(db.ok());

  std::vector<uint64_t> supports = db->ComputeItemSupports();
  std::vector<std::vector<uint64_t>> pair_counts(
      config.num_items, std::vector<uint64_t>(config.num_items, 0));
  for (uint64_t t = 0; t < db->num_transactions(); ++t) {
    std::span<const ItemId> txn = db->transaction(t);
    for (size_t i = 0; i < txn.size(); ++i) {
      for (size_t j = i + 1; j < txn.size(); ++j) {
        ++pair_counts[txn[i]][txn[j]];
      }
    }
  }
  double n = static_cast<double>(db->num_transactions());
  double max_lift = 0.0;
  for (uint32_t i = 0; i < config.num_items; ++i) {
    for (uint32_t j = i + 1; j < config.num_items; ++j) {
      if (supports[i] < 50 || supports[j] < 50) continue;
      double expected = supports[i] * supports[j] / n;
      if (expected < 5.0) continue;
      max_lift = std::max(max_lift, pair_counts[i][j] / expected);
    }
  }
  EXPECT_GT(max_lift, 3.0);
}

TEST(QuestGeneratorTest, RejectsZeroItems) {
  QuestConfig config = SmallConfig();
  config.num_items = 0;
  EXPECT_EQ(GenerateQuest(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuestGeneratorTest, RejectsZeroTransactions) {
  QuestConfig config = SmallConfig();
  config.num_transactions = 0;
  EXPECT_EQ(GenerateQuest(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuestGeneratorTest, RejectsOversizedTransactionMean) {
  QuestConfig config = SmallConfig();
  config.avg_transaction_size = 1000.0;  // > num_items
  EXPECT_EQ(GenerateQuest(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuestGeneratorTest, RejectsBadCorrelation) {
  QuestConfig config = SmallConfig();
  config.correlation = 1.5;
  EXPECT_EQ(GenerateQuest(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuestGeneratorTest, RejectsBadCorruption) {
  QuestConfig config = SmallConfig();
  config.corruption_mean = -0.2;
  EXPECT_EQ(GenerateQuest(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuestGeneratorTest, RejectsZeroPatterns) {
  QuestConfig config = SmallConfig();
  config.num_patterns = 0;
  EXPECT_EQ(GenerateQuest(config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ossm
