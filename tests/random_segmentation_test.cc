#include "core/random_segmentation.h"

#include <gtest/gtest.h>

#include "tests/segmentation_test_util.h"

namespace ossm {
namespace {

TEST(RandomSegmentationTest, ReachesTargetCount) {
  RandomSegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 5;
  SegmentationStats stats;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(test::RandomSegments(1, 40, 8), options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
  EXPECT_EQ(stats.ossub_evaluations, 0u);  // Random never evaluates ossub
}

TEST(RandomSegmentationTest, PreservesTotalCountsAndPages) {
  std::vector<Segment> input = test::RandomSegments(2, 30, 6);
  std::vector<uint64_t> totals_before = test::TotalCounts(input);

  RandomSegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 4;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(std::move(input), options, nullptr);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(test::TotalCounts(*result), totals_before);
  std::vector<uint32_t> pages = test::CollectPages(*result);
  ASSERT_EQ(pages.size(), 30u);
  for (uint32_t p = 0; p < 30; ++p) EXPECT_EQ(pages[p], p);
}

TEST(RandomSegmentationTest, NoEmptySegments) {
  RandomSegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 7;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(test::RandomSegments(3, 9, 4), options, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 7u);
  for (const Segment& seg : *result) {
    EXPECT_FALSE(seg.pages.empty());
  }
}

TEST(RandomSegmentationTest, NoOpWhenAlreadySmallEnough) {
  RandomSegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 50;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(test::RandomSegments(4, 10, 4), options, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10u);
}

TEST(RandomSegmentationTest, DeterministicForSeed) {
  RandomSegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 3;
  options.seed = 42;
  StatusOr<std::vector<Segment>> a =
      segmenter.Run(test::RandomSegments(5, 20, 5), options, nullptr);
  StatusOr<std::vector<Segment>> b =
      segmenter.Run(test::RandomSegments(5, 20, 5), options, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t s = 0; s < a->size(); ++s) {
    EXPECT_EQ((*a)[s].counts, (*b)[s].counts);
  }
}

TEST(RandomSegmentationTest, SeedChangesThePartition) {
  RandomSegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 3;
  options.seed = 1;
  StatusOr<std::vector<Segment>> a =
      segmenter.Run(test::RandomSegments(6, 20, 5), options, nullptr);
  options.seed = 2;
  StatusOr<std::vector<Segment>> b =
      segmenter.Run(test::RandomSegments(6, 20, 5), options, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference = false;
  for (size_t s = 0; s < a->size(); ++s) {
    if ((*a)[s].counts != (*b)[s].counts) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomSegmentationTest, RejectsZeroTarget) {
  RandomSegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 0;
  EXPECT_EQ(segmenter
                .Run(test::RandomSegments(7, 5, 3), options, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RandomSegmentationTest, RejectsEmptyInput) {
  RandomSegmenter segmenter;
  SegmentationOptions options;
  EXPECT_EQ(segmenter.Run({}, options, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RandomSegmentationTest, Name) {
  RandomSegmenter segmenter;
  EXPECT_EQ(segmenter.name(), "Random");
}

}  // namespace
}  // namespace ossm
