#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace ossm {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(99);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.UniformInt(kBuckets)];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / kBuckets, 600);  // ~6 sigma
  }
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformIntRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(RngTest, PoissonMeanAndVariance) {
  Rng rng(23);
  for (double mean : {0.5, 4.0, 10.0, 80.0}) {
    constexpr int kDraws = 20000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      double v = static_cast<double>(rng.Poisson(mean));
      sum += v;
      sum_sq += v * v;
    }
    double sample_mean = sum / kDraws;
    double sample_var = sum_sq / kDraws - sample_mean * sample_mean;
    EXPECT_NEAR(sample_mean, mean, 5 * std::sqrt(mean / kDraws) + 0.5)
        << "mean " << mean;
    EXPECT_NEAR(sample_var, mean, 0.15 * mean + 0.5) << "mean " << mean;
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  constexpr int kDraws = 50000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Exponential(2.5);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 2.5, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  constexpr int kDraws = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kDraws;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sum_sq / kDraws - mean * mean, 4.0, 0.2);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.Shuffle(values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ShuffleActuallyMoves) {
  Rng rng(41);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.Shuffle(values);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) {
    if (values[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 15);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(43);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace ossm
