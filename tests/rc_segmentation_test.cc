#include "core/rc_segmentation.h"

#include <gtest/gtest.h>

#include "core/random_segmentation.h"
#include "tests/segmentation_test_util.h"

namespace ossm {
namespace {

TEST(RcSegmentationTest, ReachesTargetCount) {
  RcSegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 6;
  SegmentationStats stats;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(test::RandomSegments(1, 30, 8), options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 6u);
  EXPECT_GT(stats.ossub_evaluations, 0u);
}

TEST(RcSegmentationTest, PreservesTotalsAndPages) {
  std::vector<Segment> input = test::RandomSegments(2, 25, 5);
  std::vector<uint64_t> totals = test::TotalCounts(input);
  RcSegmenter segmenter;
  SegmentationOptions options;
  options.target_segments = 4;
  StatusOr<std::vector<Segment>> result =
      segmenter.Run(std::move(input), options, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(test::TotalCounts(*result), totals);
  EXPECT_EQ(test::CollectPages(*result).size(), 25u);
}

TEST(RcSegmentationTest, MergesWithinZeroLossFamilies) {
  // Two configuration families, each with a zero-loss twin. Whatever random
  // segment RC picks, its closest neighbour is its own twin, so the single
  // merge never crosses families — for any seed.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    std::vector<Segment> input;
    Segment a1, a2, b1, b2;
    a1.counts = {10, 5, 1};
    a1.pages = {0};
    a2.counts = {20, 10, 2};
    a2.pages = {1};
    b1.counts = {1, 5, 10};
    b1.pages = {100};
    b2.counts = {2, 10, 20};
    b2.pages = {101};
    input.push_back(std::move(a1));
    input.push_back(std::move(a2));
    input.push_back(std::move(b1));
    input.push_back(std::move(b2));

    RcSegmenter segmenter;
    SegmentationOptions options;
    options.target_segments = 3;
    options.seed = seed;
    StatusOr<std::vector<Segment>> result =
        segmenter.Run(std::move(input), options, nullptr);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 3u);
    for (const Segment& seg : *result) {
      if (seg.pages.size() == 2) {
        // Pages of one family are both < 100 or both >= 100.
        EXPECT_EQ(seg.pages[0] < 100, seg.pages[1] < 100) << "seed " << seed;
      }
    }
  }
}

TEST(RcSegmentationTest, QualityAtLeastAsGoodAsRandomOnAverage) {
  // RC merges closest segments, so across several seeds its accumulated
  // bound loss (TotalPairBound of the result — the objective equation (2)
  // scores) should beat Random's arbitrary merges.
  uint64_t rc_total = 0;
  uint64_t random_total = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    SegmentationOptions options;
    options.target_segments = 5;
    options.seed = seed;

    RcSegmenter rc;
    StatusOr<std::vector<Segment>> rc_result =
        rc.Run(test::RandomSegments(seed + 10, 30, 10), options, nullptr);
    ASSERT_TRUE(rc_result.ok());
    rc_total += test::TotalPairBound(*rc_result);

    RandomSegmenter random;
    StatusOr<std::vector<Segment>> random_result = random.Run(
        test::RandomSegments(seed + 10, 30, 10), options, nullptr);
    ASSERT_TRUE(random_result.ok());
    random_total += test::TotalPairBound(*random_result);
  }
  EXPECT_LT(rc_total, random_total);
}

TEST(RcSegmentationTest, DeterministicForSeed) {
  SegmentationOptions options;
  options.target_segments = 3;
  options.seed = 11;
  RcSegmenter segmenter;
  StatusOr<std::vector<Segment>> a =
      segmenter.Run(test::RandomSegments(4, 15, 6), options, nullptr);
  StatusOr<std::vector<Segment>> b =
      segmenter.Run(test::RandomSegments(4, 15, 6), options, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t s = 0; s < a->size(); ++s) {
    EXPECT_EQ((*a)[s].counts, (*b)[s].counts);
  }
}

TEST(RcSegmentationTest, HonoursBubbleList) {
  // With the bubble restricted to items {0, 1}, differences on item 2 are
  // invisible to the loss. Two families are identical on the bubble (zero
  // loss within, positive loss across), so the single merge stays inside a
  // family for any seed — even though item 2 would make every within-family
  // pair look maximally different under the full summation.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    std::vector<Segment> input;
    Segment a, b, c, d;
    a.counts = {10, 5, 100};
    a.pages = {0};
    b.counts = {10, 5, 0};
    b.pages = {1};
    c.counts = {0, 50, 3};
    c.pages = {2};
    d.counts = {0, 50, 77};
    d.pages = {3};
    input.push_back(std::move(a));
    input.push_back(std::move(b));
    input.push_back(std::move(c));
    input.push_back(std::move(d));

    SegmentationOptions options;
    options.target_segments = 3;
    options.bubble = {0, 1};
    options.seed = seed;
    RcSegmenter segmenter;
    StatusOr<std::vector<Segment>> result =
        segmenter.Run(std::move(input), options, nullptr);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 3u);
    for (const Segment& seg : *result) {
      if (seg.pages.size() == 2) {
        std::vector<uint32_t> pages = seg.pages;
        std::sort(pages.begin(), pages.end());
        bool within_family = (pages == std::vector<uint32_t>{0, 1}) ||
                             (pages == std::vector<uint32_t>{2, 3});
        EXPECT_TRUE(within_family) << "seed " << seed;
      }
    }
  }
}

TEST(RcSegmentationTest, RejectsInvalidBubble) {
  SegmentationOptions options;
  options.target_segments = 2;
  options.bubble = {5, 3};  // not increasing
  RcSegmenter segmenter;
  EXPECT_EQ(
      segmenter.Run(test::RandomSegments(1, 5, 6), options, nullptr)
          .status()
          .code(),
      StatusCode::kInvalidArgument);

  options.bubble = {3, 99};  // out of domain
  EXPECT_EQ(
      segmenter.Run(test::RandomSegments(1, 5, 6), options, nullptr)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(RcSegmentationTest, Name) {
  RcSegmenter segmenter;
  EXPECT_EQ(segmenter.name(), "RC");
}

}  // namespace
}  // namespace ossm
