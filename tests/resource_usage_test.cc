#include "obs/perf/resource_usage.h"

#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace ossm {
namespace obs {
namespace perf {
namespace {

TEST(ResourceUsageTest, SampleReadsSaneProcessShape) {
  ResourceUsage usage = SampleResourceUsage();
  // Any Linux process has resident memory, at least this thread, and at
  // least stdin/stdout/stderr open.
  EXPECT_GT(usage.rss_bytes, 0u);
  EXPECT_GT(usage.peak_rss_bytes, 0u);
  EXPECT_GE(usage.peak_rss_bytes, usage.rss_bytes / 2);  // same unit scale
  EXPECT_GE(usage.threads, 1u);
  EXPECT_GE(usage.open_fds, 3u);
  EXPECT_GE(usage.uptime_seconds, 0.0);
  EXPECT_LT(usage.uptime_seconds, 3600.0);  // a test binary, not a daemon
}

TEST(ResourceUsageTest, FaultCountersGrowWithTouchedMemory) {
  ResourceUsage before = SampleResourceUsage();
  // Touch a few MB page by page: minor faults must move.
  std::vector<char> pages(4 << 20);
  for (size_t i = 0; i < pages.size(); i += 4096) pages[i] = 1;
  ResourceUsage after = SampleResourceUsage();
  EXPECT_GE(after.minor_faults, before.minor_faults);
  ResourceUsage delta = ResourceDelta(before, after);
  EXPECT_EQ(delta.minor_faults, after.minor_faults - before.minor_faults);
}

TEST(ResourceUsageTest, DeltaSaturatesAndCarriesPointInTimeFields) {
  ResourceUsage start, end;
  start.minor_faults = 100;
  end.minor_faults = 40;  // end < start: saturate to 0, never wrap
  end.rss_bytes = 1234;
  end.threads = 5;
  ResourceUsage delta = ResourceDelta(start, end);
  EXPECT_EQ(delta.minor_faults, 0u);
  EXPECT_EQ(delta.rss_bytes, 1234u);  // point-in-time: end's value
  EXPECT_EQ(delta.threads, 5u);
}

TEST(ResourceUsageTest, ProcessGaugesLandInTheRegistry) {
  EnableMetricsCollection();
  RecordProcessResourceMetrics();
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool saw_rss = false, saw_threads = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "process.rss_bytes") {
      saw_rss = true;
      EXPECT_GT(value, 0);
    }
    if (name == "process.threads") {
      saw_threads = true;
      EXPECT_GE(value, 1);
    }
  }
  EXPECT_TRUE(saw_rss);
  EXPECT_TRUE(saw_threads);
}

TEST(ResourceUsageTest, PhaseCountersSkipZeroFields) {
  EnableMetricsCollection();
  ResourceUsage delta;
  delta.minor_faults = 17;
  delta.major_faults = 0;  // must not create a counter
  RecordPhaseResources("unit_res_phase", delta);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool saw_minor = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "res.unit_res_phase.minor_faults") {
      saw_minor = true;
      EXPECT_EQ(value, 17u);
    }
    EXPECT_NE(name, "res.unit_res_phase.major_faults");
  }
  EXPECT_TRUE(saw_minor);
}

}  // namespace
}  // namespace perf
}  // namespace obs
}  // namespace ossm
