#include "core/segment_support_map.h"

#include <gtest/gtest.h>

#include <vector>

namespace ossm {
namespace {

Segment MakeSegment(std::vector<uint64_t> counts) {
  Segment seg;
  seg.counts = std::move(counts);
  seg.num_transactions = 0;
  return seg;
}

// The OSSM of Example 1 in the paper: 4 segments, items a=0, b=1, c=2.
SegmentSupportMap PaperExample1() {
  std::vector<Segment> segments;
  segments.push_back(MakeSegment({20, 40, 40}));
  segments.push_back(MakeSegment({10, 40, 20}));
  segments.push_back(MakeSegment({40, 40, 20}));
  segments.push_back(MakeSegment({40, 10, 20}));
  return SegmentSupportMap::FromSegments(segments);
}

TEST(SegmentSupportMapTest, DimensionsAndRows) {
  SegmentSupportMap map = PaperExample1();
  EXPECT_EQ(map.num_items(), 3u);
  EXPECT_EQ(map.num_segments(), 4u);
  std::span<const uint64_t> row_a = map.item_row(0);
  ASSERT_EQ(row_a.size(), 4u);
  EXPECT_EQ(row_a[0], 20u);
  EXPECT_EQ(row_a[1], 10u);
  EXPECT_EQ(row_a[2], 40u);
  EXPECT_EQ(row_a[3], 40u);
}

TEST(SegmentSupportMapTest, SingletonSupportsAreRowSums) {
  SegmentSupportMap map = PaperExample1();
  EXPECT_EQ(map.Support(0), 110u);  // a
  EXPECT_EQ(map.Support(1), 130u);  // b
  EXPECT_EQ(map.Support(2), 100u);  // c
}

TEST(SegmentSupportMapTest, PaperExample1PairBound) {
  // sup_hat({a,b}) = min(20,40)+min(10,40)+min(40,40)+min(40,10) = 80.
  SegmentSupportMap map = PaperExample1();
  EXPECT_EQ(map.UpperBoundPair(0, 1), 80u);
  Itemset ab = {0, 1};
  EXPECT_EQ(map.UpperBound(ab), 80u);
}

TEST(SegmentSupportMapTest, PaperExample1TripleBound) {
  // sup_hat({a,b,c}) = 20 + 10 + 20 + 10 = 60.
  SegmentSupportMap map = PaperExample1();
  Itemset abc = {0, 1, 2};
  EXPECT_EQ(map.UpperBound(abc), 60u);
}

TEST(SegmentSupportMapTest, SingleSegmentCollapsesToGlobalMin) {
  // Without segmentation the bound is min of the global supports: 110 for
  // {a,b}, 100 for {a,b,c} — the "last column" comparison in Example 1.
  SegmentSupportMap map = SegmentSupportMap::SingleSegment({110, 130, 100});
  EXPECT_EQ(map.UpperBoundPair(0, 1), 110u);
  Itemset abc = {0, 1, 2};
  EXPECT_EQ(map.UpperBound(abc), 100u);
  EXPECT_EQ(map.num_segments(), 1u);
}

TEST(SegmentSupportMapTest, MoreSegmentsNeverLoosenTheBound) {
  SegmentSupportMap fine = PaperExample1();
  SegmentSupportMap coarse = SegmentSupportMap::SingleSegment(
      {fine.Support(0), fine.Support(1), fine.Support(2)});
  for (ItemId a = 0; a < 3; ++a) {
    for (ItemId b = a + 1; b < 3; ++b) {
      EXPECT_LE(fine.UpperBoundPair(a, b), coarse.UpperBoundPair(a, b));
    }
  }
}

TEST(SegmentSupportMapTest, PairBoundIsSymmetric) {
  SegmentSupportMap map = PaperExample1();
  EXPECT_EQ(map.UpperBoundPair(0, 2), map.UpperBoundPair(2, 0));
  EXPECT_EQ(map.UpperBoundPair(1, 2), map.UpperBoundPair(2, 1));
}

TEST(SegmentSupportMapTest, MemoryFootprint) {
  SegmentSupportMap map = PaperExample1();
  EXPECT_EQ(map.MemoryFootprintBytes(), 3u * 4u * sizeof(uint64_t));
}

TEST(SegmentSupportMapTest, EqualityOperator) {
  EXPECT_EQ(PaperExample1(), PaperExample1());
  SegmentSupportMap other = SegmentSupportMap::SingleSegment({1, 2, 3});
  EXPECT_FALSE(PaperExample1() == other);
}

TEST(SegmentSupportMapTest, ZeroCountShortCircuit) {
  std::vector<Segment> segments;
  segments.push_back(MakeSegment({0, 100, 100}));
  segments.push_back(MakeSegment({100, 0, 100}));
  SegmentSupportMap map = SegmentSupportMap::FromSegments(segments);
  Itemset abc = {0, 1, 2};
  EXPECT_EQ(map.UpperBound(abc), 0u);
}

TEST(SegmentSupportMapTest, EmptySegmentListDies) {
  std::vector<Segment> none;
  EXPECT_DEATH(SegmentSupportMap::FromSegments(none), "Check failed");
}

}  // namespace
}  // namespace ossm
