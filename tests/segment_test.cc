#include "core/segment.h"

#include <gtest/gtest.h>

namespace ossm {
namespace {

Segment MakeSegment(std::vector<uint64_t> counts, uint64_t transactions,
                    std::vector<uint32_t> pages) {
  Segment seg;
  seg.counts = std::move(counts);
  seg.num_transactions = transactions;
  seg.pages = std::move(pages);
  return seg;
}

TEST(SegmentTest, MergeAddsCountsAndConcatenatesPages) {
  Segment a = MakeSegment({1, 2, 3}, 5, {0});
  Segment b = MakeSegment({10, 0, 1}, 7, {3, 4});
  MergeSegmentInto(a, std::move(b));
  EXPECT_EQ(a.counts, (std::vector<uint64_t>{11, 2, 4}));
  EXPECT_EQ(a.num_transactions, 12u);
  EXPECT_EQ(a.pages, (std::vector<uint32_t>{0, 3, 4}));
}

TEST(SegmentTest, MergeLeavesSourceEmpty) {
  Segment a = MakeSegment({1}, 1, {0});
  Segment b = MakeSegment({2}, 2, {1});
  MergeSegmentInto(a, std::move(b));
  EXPECT_TRUE(b.counts.empty());
  EXPECT_TRUE(b.pages.empty());
  EXPECT_EQ(b.num_transactions, 0u);
}

TEST(SegmentTest, MergeMismatchedDomainsDies) {
  Segment a = MakeSegment({1, 2}, 1, {0});
  Segment b = MakeSegment({1}, 1, {1});
  EXPECT_DEATH(MergeSegmentInto(a, std::move(b)), "Check failed");
}

TEST(SegmentTest, SegmentsFromPages) {
  TransactionDatabase db(3);
  ASSERT_TRUE(db.Append({0, 1}).ok());
  ASSERT_TRUE(db.Append({1}).ok());
  ASSERT_TRUE(db.Append({2}).ok());
  StatusOr<PageLayout> layout = MakePageLayout(db, 2);
  ASSERT_TRUE(layout.ok());
  PageItemCounts counts(db, *layout);

  std::vector<Segment> segments = SegmentsFromPages(counts);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].counts, (std::vector<uint64_t>{1, 2, 0}));
  EXPECT_EQ(segments[0].num_transactions, 2u);
  EXPECT_EQ(segments[0].pages, (std::vector<uint32_t>{0}));
  EXPECT_EQ(segments[1].counts, (std::vector<uint64_t>{0, 0, 1}));
  EXPECT_EQ(segments[1].num_transactions, 1u);
}

TEST(SegmentTest, SegmentsFromTransactions) {
  TransactionDatabase db(3);
  ASSERT_TRUE(db.Append({0, 2}).ok());
  ASSERT_TRUE(db.Append({}).ok());
  std::vector<Segment> segments = SegmentsFromTransactions(db);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].counts, (std::vector<uint64_t>{1, 0, 1}));
  EXPECT_EQ(segments[1].counts, (std::vector<uint64_t>{0, 0, 0}));
  EXPECT_EQ(segments[0].num_transactions, 1u);
}

}  // namespace
}  // namespace ossm
