#ifndef OSSM_TESTS_SEGMENTATION_TEST_UTIL_H_
#define OSSM_TESTS_SEGMENTATION_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/ossub.h"
#include "core/segment.h"

namespace ossm {
namespace test {

// Random page-like segments over `num_items` items.
inline std::vector<Segment> RandomSegments(uint64_t seed, size_t count,
                                           uint32_t num_items,
                                           uint64_t max_count = 50) {
  Rng rng(seed);
  std::vector<Segment> segments(count);
  for (size_t s = 0; s < count; ++s) {
    segments[s].counts.resize(num_items);
    for (auto& c : segments[s].counts) c = rng.UniformInt(max_count + 1);
    segments[s].num_transactions = 1 + rng.UniformInt(20);
    segments[s].pages.push_back(static_cast<uint32_t>(s));
  }
  return segments;
}

// Sum of per-item counts across segments — invariant under any merging.
inline std::vector<uint64_t> TotalCounts(const std::vector<Segment>& segs) {
  std::vector<uint64_t> totals(segs.empty() ? 0 : segs[0].counts.size(), 0);
  for (const Segment& seg : segs) {
    for (size_t i = 0; i < seg.counts.size(); ++i) totals[i] += seg.counts[i];
  }
  return totals;
}

// All input pages must appear exactly once across the output segments.
inline std::vector<uint32_t> CollectPages(const std::vector<Segment>& segs) {
  std::vector<uint32_t> pages;
  for (const Segment& seg : segs) {
    pages.insert(pages.end(), seg.pages.begin(), seg.pages.end());
  }
  std::sort(pages.begin(), pages.end());
  return pages;
}

// Total pairwise ossub between the final segments (a diversity measure;
// used by tests that only need "some loss remains / none remains").
inline uint64_t TotalPairwiseOssub(const std::vector<Segment>& segs) {
  uint64_t total = 0;
  for (size_t a = 0; a < segs.size(); ++a) {
    for (size_t b = a + 1; b < segs.size(); ++b) {
      total += PairwiseOssub(segs[a], segs[b]);
    }
  }
  return total;
}

// The objective the constrained segmentation problem actually minimizes:
// the sum over item pairs of the segmentation's pair bound,
// sum_{x<y} sum_s min(c_s(x), c_s(y)). Merging segments a and b increases
// this by exactly PairwiseOssub(a, b), so a segmenter's accumulated loss is
// TotalPairBound(final) - TotalPairBound(initial). Lower = tighter map.
inline uint64_t TotalPairBound(const std::vector<Segment>& segs) {
  uint64_t total = 0;
  for (const Segment& seg : segs) {
    for (size_t x = 0; x < seg.counts.size(); ++x) {
      for (size_t y = x + 1; y < seg.counts.size(); ++y) {
        total += std::min(seg.counts[x], seg.counts[y]);
      }
    }
  }
  return total;
}

}  // namespace test
}  // namespace ossm

#endif  // OSSM_TESTS_SEGMENTATION_TEST_UTIL_H_
