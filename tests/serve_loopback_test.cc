// In-process loopback test of the full serving stack: TCP front-end ->
// batcher -> engine, answers checked bit-for-bit against a straight scan of
// the database, at 1 and 4 pool threads.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/ossm_builder.h"
#include "datagen/quest_generator.h"
#include "parallel/thread_pool.h"
#include "serve/batcher.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/telemetry.h"

namespace ossm {
namespace serve {
namespace {

struct Fixture {
  TransactionDatabase db;
  SegmentSupportMap map;
};

Fixture MakeFixture() {
  QuestConfig config;
  config.num_items = 60;
  config.num_transactions = 2500;
  config.avg_transaction_size = 6;
  config.num_patterns = 15;
  config.seed = 29;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  OSSM_CHECK(db.ok());
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandomGreedy;
  options.target_segments = 20;
  options.transactions_per_page = 125;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, options);
  OSSM_CHECK(build.ok());
  return Fixture{std::move(*db), std::move(build->map)};
}

uint64_t OracleSupport(const TransactionDatabase& db,
                       const Itemset& itemset) {
  uint64_t support = 0;
  for (uint64_t t = 0; t < db.num_transactions(); ++t) {
    if (db.Contains(t, itemset)) ++support;
  }
  return support;
}

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads until `count` newline-terminated lines have arrived (or EOF).
std::vector<std::string> ReadLines(int fd, size_t count) {
  std::vector<std::string> lines;
  std::string buffer;
  char chunk[4096];
  while (lines.size() < count) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (;;) {
      size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      lines.push_back(buffer.substr(start, newline - start));
      start = newline + 1;
    }
    buffer.erase(0, start);
  }
  return lines;
}

// One full client round against a fresh serving stack: pipelined mixed
// queries (rejects, singletons, repeats for the cache, errors), every
// answer checked against the oracle.
void RunLoopbackRound(uint32_t pool_threads) {
  SCOPED_TRACE("pool_threads=" + std::to_string(pool_threads));
  parallel::SetDefaultThreadCount(pool_threads);
  Fixture fx = MakeFixture();
  const uint64_t minsup = fx.db.num_transactions() / 20;  // 5%

  QueryEngineConfig engine_config;
  engine_config.min_support = minsup;
  QueryEngine engine(&fx.db, &fx.map, engine_config);
  BatcherConfig batcher_config;
  batcher_config.max_batch = 16;
  batcher_config.max_delay_us = 200;
  Batcher batcher(&engine, batcher_config);
  ServerConfig server_config;
  server_config.port = 0;
  SupportServer server(&engine, &batcher, server_config);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  struct Expectation {
    std::string line;
    Itemset itemset;  // empty: expect ERR
  };
  std::vector<Expectation> expectations;
  for (ItemId a = 0; a < 40; ++a) {
    expectations.push_back({"Q " + std::to_string(a), {a}});
    Itemset pair = {a, static_cast<ItemId>(a + 17)};
    expectations.push_back(
        {"Q " + std::to_string(a) + " " + std::to_string(a + 17), pair});
  }
  // Repeats: the second occurrence may come from the cache; the answer
  // must not change.
  expectations.push_back({"Q 3 20", {3, 20}});
  expectations.push_back({"Q 3 20", {3, 20}});
  // Errors: out-of-domain item and a non-numeric token.
  expectations.push_back({"Q 5000", {}});
  expectations.push_back({"Q 1 banana", {}});

  std::string payload = "PING\n";
  for (const Expectation& e : expectations) payload += e.line + "\n";
  payload += "STATS\nQUIT\n";

  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, payload));
  std::vector<std::string> lines = ReadLines(fd, expectations.size() + 3);
  ::close(fd);
  ASSERT_EQ(lines.size(), expectations.size() + 3);

  EXPECT_EQ(lines.front(), "PONG");
  EXPECT_EQ(lines.back(), "BYE");
  EXPECT_EQ(lines[lines.size() - 2].rfind("STATS ", 0), 0u);

  for (size_t i = 0; i < expectations.size(); ++i) {
    const Expectation& e = expectations[i];
    const std::string& response = lines[i + 1];
    if (e.itemset.empty()) {
      EXPECT_EQ(response.rfind("ERR", 0), 0u) << e.line << " -> " << response;
      continue;
    }
    uint64_t exact = OracleSupport(fx.db, e.itemset);
    if (response.rfind("OK ", 0) == 0) {
      EXPECT_EQ(std::stoull(response.substr(3)), exact)
          << e.line << " -> " << response;
    } else if (response.rfind("RJ ", 0) == 0) {
      uint64_t bound = std::stoull(response.substr(3));
      EXPECT_LT(bound, minsup) << e.line << " -> " << response;
      EXPECT_LE(exact, bound) << e.line << " -> " << response;
    } else {
      ADD_FAILURE() << e.line << " -> unexpected " << response;
    }
  }

  server.Shutdown();
  batcher.Shutdown();
  // After shutdown the port no longer accepts.
  int refused = ConnectLoopback(server.port());
  if (refused >= 0) ::close(refused);
  EXPECT_LT(refused, 0);
}

TEST(ServeLoopbackTest, AnswersMatchOracleSingleThreaded) {
  RunLoopbackRound(1);
  parallel::SetDefaultThreadCount(parallel::DefaultThreadCount());
}

TEST(ServeLoopbackTest, AnswersMatchOracleFourThreads) {
  RunLoopbackRound(4);
  parallel::SetDefaultThreadCount(parallel::DefaultThreadCount());
}

TEST(ServeLoopbackTest, TwoConnectionsAreIndependent) {
  Fixture fx = MakeFixture();
  QueryEngineConfig engine_config;
  engine_config.min_support = 1;
  QueryEngine engine(&fx.db, &fx.map, engine_config);
  Batcher batcher(&engine, BatcherConfig{});
  ServerConfig server_config;
  server_config.port = 0;
  SupportServer server(&engine, &batcher, server_config);
  ASSERT_TRUE(server.Start().ok());

  int a = ConnectLoopback(server.port());
  int b = ConnectLoopback(server.port());
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_TRUE(SendAll(a, "Q 1 2\nQUIT\n"));
  ASSERT_TRUE(SendAll(b, "PING\nQUIT\n"));
  std::vector<std::string> from_a = ReadLines(a, 2);
  std::vector<std::string> from_b = ReadLines(b, 2);
  ::close(a);
  ::close(b);
  ASSERT_EQ(from_a.size(), 2u);
  ASSERT_EQ(from_b.size(), 2u);
  // {1,2} may or may not clear the bound screen; either way it's answered.
  EXPECT_TRUE(from_a[0].rfind("OK ", 0) == 0 ||
              from_a[0].rfind("RJ ", 0) == 0)
      << from_a[0];
  EXPECT_EQ(from_b[0], "PONG");
  EXPECT_GE(server.connections_accepted(), 2u);
  server.Shutdown();
  batcher.Shutdown();
}

// Splits "METRICS <n>" / "SLOWLOG <n>" multi-line responses: asserts the
// header, then returns the n body lines that follow it in `lines` starting
// at `index` (which advances past the response).
std::vector<std::string> TakeBody(const std::vector<std::string>& lines,
                                  size_t& index, const std::string& verb) {
  EXPECT_LT(index, lines.size());
  const std::string& header = lines[index];
  EXPECT_EQ(header.rfind(verb + " ", 0), 0u) << header;
  size_t n = std::stoull(header.substr(verb.size() + 1));
  ++index;
  std::vector<std::string> body;
  for (size_t i = 0; i < n && index < lines.size(); ++i, ++index) {
    body.push_back(lines[index]);
  }
  EXPECT_EQ(body.size(), n);
  return body;
}

// Minimal Prometheus text-format check shared with the CI smoke: TYPE
// comments or `series value` lines, nothing else.
void ExpectValidExposition(const std::vector<std::string>& body) {
  for (const std::string& line : body) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) continue;
    ASSERT_EQ(line[0] == '#', false) << line;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_TRUE(end != nullptr && *end == '\0') << line;
  }
}

double SeriesValue(const std::vector<std::string>& body,
                   const std::string& series) {
  for (const std::string& line : body) {
    if (line.size() > series.size() && line[series.size()] == ' ' &&
        line.compare(0, series.size(), series) == 0) {
      return std::strtod(line.c_str() + series.size() + 1, nullptr);
    }
  }
  ADD_FAILURE() << "series not found: " << series;
  return -1.0;
}

// The telemetry round: traffic through the full stack with a
// log-everything slowlog threshold, then STATS key order, a parsing
// METRICS exposition whose counters match the traffic, and a SLOWLOG tail
// that captured the queries.
TEST(ServeLoopbackTest, MetricsSlowlogAndStatsRoundTrip) {
  Fixture fx = MakeFixture();
  ServeTelemetry::Config telemetry_config;
  telemetry_config.slowlog_threshold_us = 0;  // every query is "slow"
  ServeTelemetry telemetry(telemetry_config);

  QueryEngineConfig engine_config;
  engine_config.min_support = fx.db.num_transactions() / 20;
  engine_config.telemetry = &telemetry;
  QueryEngine engine(&fx.db, &fx.map, engine_config);
  BatcherConfig batcher_config;
  batcher_config.max_batch = 8;
  batcher_config.max_delay_us = 200;
  batcher_config.telemetry = &telemetry;
  Batcher batcher(&engine, batcher_config);
  ServerConfig server_config;
  server_config.port = 0;
  server_config.telemetry = &telemetry;
  SupportServer server(&engine, &batcher, server_config);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kQueries = 24;
  std::string payload;
  for (size_t i = 0; i < kQueries; ++i) {
    payload += "Q " + std::to_string(i % 40) + "\n";
  }
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, payload));
  std::vector<std::string> answers = ReadLines(fd, kQueries);
  ASSERT_EQ(answers.size(), kQueries);
  for (const std::string& answer : answers) {
    EXPECT_TRUE(answer.rfind("OK ", 0) == 0 || answer.rfind("RJ ", 0) == 0)
        << answer;
  }

  // Scrape after the answers have drained: STATS/METRICS/SLOWLOG are
  // evaluated when their request line is parsed, so a scraper that wants
  // to see completed traffic must not race it down the same pipeline.
  ASSERT_TRUE(SendAll(fd, "STATS\nMETRICS\nSLOWLOG 5\nSLOWLOG\nQUIT\n"));
  std::vector<std::string> lines = ReadLines(fd, 500);
  ::close(fd);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines.back(), "BYE");

  size_t index = 0;
  // STATS: the documented key order, existing keys first, new keys after.
  const std::string& stats = lines[index++];
  ASSERT_EQ(stats.rfind("STATS ", 0), 0u);
  size_t cursor = 0;
  for (const char* key :
       {"queries=", "bound_rejects=", "singleton_hits=", "cache_hits=",
        "exact_counts=", "cache_size=", "batches=", "coalesced=",
        "backpressure=", "queue_depth=", "queue_wait_p50_us=",
        "queue_wait_p95_us=", "queue_wait_p99_us="}) {
    size_t at = stats.find(key, cursor);
    ASSERT_NE(at, std::string::npos) << key << " missing in " << stats;
    cursor = at;
  }

  std::vector<std::string> metrics = TakeBody(lines, index, "METRICS");
  ASSERT_FALSE(metrics.empty());
  ExpectValidExposition(metrics);
  EXPECT_EQ(SeriesValue(metrics, "ossm_serve_queries_total"),
            static_cast<double>(kQueries));
  EXPECT_EQ(SeriesValue(metrics, "ossm_serve_request_us_count"),
            static_cast<double>(kQueries));
  EXPECT_GE(SeriesValue(metrics, "ossm_serve_slowlog_entries_total"),
            static_cast<double>(kQueries));
  // Windowed quantiles are ordered like quantiles.
  double p50 = SeriesValue(
      metrics, "ossm_serve_request_us{window=\"1m\",quantile=\"0.5\"}");
  double p99 = SeriesValue(
      metrics, "ossm_serve_request_us{window=\"1m\",quantile=\"0.99\"}");
  EXPECT_LE(p50, p99);

  std::vector<std::string> tail = TakeBody(lines, index, "SLOWLOG");
  ASSERT_EQ(tail.size(), 5u);  // capped by the request count
  for (const std::string& entry : tail) {
    EXPECT_EQ(entry.rfind("age_us=", 0), 0u) << entry;
    EXPECT_NE(entry.find(" total_us="), std::string::npos) << entry;
    EXPECT_NE(entry.find(" tier="), std::string::npos) << entry;
    EXPECT_NE(entry.find(" items="), std::string::npos) << entry;
  }
  // Bare SLOWLOG returns the default 16 entries.
  std::vector<std::string> bare = TakeBody(lines, index, "SLOWLOG");
  EXPECT_EQ(bare.size(), 16u);

  EXPECT_EQ(lines[index], "BYE");
  server.Shutdown();
  batcher.Shutdown();
}

// Without a telemetry instance the new verbs answer with empty bodies, and
// on a zero-traffic server with telemetry the exposition still parses.
TEST(ServeLoopbackTest, MetricsAndSlowlogOnQuietServers) {
  Fixture fx = MakeFixture();
  QueryEngine engine(&fx.db, &fx.map, QueryEngineConfig{});
  Batcher batcher(&engine, BatcherConfig{});
  {
    ServerConfig config;  // no telemetry wired
    config.port = 0;
    SupportServer server(&engine, &batcher, config);
    ASSERT_TRUE(server.Start().ok());
    int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendAll(fd, "METRICS\nSLOWLOG\nQUIT\n"));
    std::vector<std::string> lines = ReadLines(fd, 3);
    ::close(fd);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "METRICS 0");
    EXPECT_EQ(lines[1], "SLOWLOG 0");
    EXPECT_EQ(lines[2], "BYE");
    server.Shutdown();
  }
  {
    ServeTelemetry telemetry;
    ServerConfig config;
    config.port = 0;
    config.telemetry = &telemetry;
    SupportServer server(&engine, &batcher, config);
    ASSERT_TRUE(server.Start().ok());
    int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendAll(fd, "METRICS\nSLOWLOG\nQUIT\n"));
    std::vector<std::string> lines = ReadLines(fd, 200);
    ::close(fd);
    ASSERT_GE(lines.size(), 3u);
    size_t index = 0;
    std::vector<std::string> metrics = TakeBody(lines, index, "METRICS");
    ASSERT_FALSE(metrics.empty());  // counters exist even with no traffic
    ExpectValidExposition(metrics);
    EXPECT_EQ(SeriesValue(metrics, "ossm_serve_queries_total"), 0.0);
    std::vector<std::string> tail = TakeBody(lines, index, "SLOWLOG");
    EXPECT_TRUE(tail.empty());
    EXPECT_EQ(lines[index], "BYE");
    server.Shutdown();
  }
  batcher.Shutdown();
}

TEST(ServeLoopbackTest, ProfileVerbAnswersFramedFoldedStacks) {
  Fixture fx = MakeFixture();
  QueryEngine engine(&fx.db, &fx.map, QueryEngineConfig{});
  Batcher batcher(&engine, BatcherConfig{});
  ServerConfig server_config;
  server_config.port = 0;
  SupportServer server(&engine, &batcher, server_config);
  ASSERT_TRUE(server.Start().ok());

  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  // A short window on a quiet server: the frame must come back well-formed
  // whether or not any SIGPROF fired (an idle process burns no CPU time,
  // so zero samples is the common case here).
  ASSERT_TRUE(SendAll(fd, "PROFILE 50\nPING\nQUIT\n"));
  std::vector<std::string> lines = ReadLines(fd, 200);
  ::close(fd);
  ASSERT_GE(lines.size(), 3u);
  size_t index = 0;
  std::vector<std::string> body = TakeBody(lines, index, "PROFILE");
  for (const std::string& folded : body) {
    // "frame(;frame)* count"
    size_t space = folded.rfind(' ');
    ASSERT_NE(space, std::string::npos) << folded;
    EXPECT_GT(std::stoull(folded.substr(space + 1)), 0u) << folded;
  }
  // The profile blocked only its own slot: the pipelined PING still
  // answered, in order, after it.
  EXPECT_EQ(lines[index++], "PONG");
  EXPECT_EQ(lines[index], "BYE");
  server.Shutdown();
  batcher.Shutdown();
}

TEST(ServeLoopbackTest, ConcurrentProfileIsRejectedNotQueued) {
  Fixture fx = MakeFixture();
  QueryEngine engine(&fx.db, &fx.map, QueryEngineConfig{});
  Batcher batcher(&engine, BatcherConfig{});
  ServerConfig server_config;
  server_config.port = 0;
  SupportServer server(&engine, &batcher, server_config);
  ASSERT_TRUE(server.Start().ok());

  // Two pipelined PROFILEs: the second is dispatched while the first's
  // sampling window is open, so it must fail fast with ERR instead of
  // serializing behind the first (the sampler is process-global).
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "PROFILE 300\nPROFILE 300\nQUIT\n"));
  std::vector<std::string> lines = ReadLines(fd, 200);
  ::close(fd);
  ASSERT_GE(lines.size(), 3u);
  size_t index = 0;
  TakeBody(lines, index, "PROFILE");  // first one completes normally
  EXPECT_EQ(lines[index].rfind("ERR", 0), 0u) << lines[index];
  EXPECT_NE(lines[index].find("already"), std::string::npos) << lines[index];
  ++index;
  EXPECT_EQ(lines[index], "BYE");
  server.Shutdown();
  batcher.Shutdown();
}

TEST(ServeLoopbackTest, OversizedRequestLineClosesConnection) {
  Fixture fx = MakeFixture();
  QueryEngine engine(&fx.db, &fx.map, QueryEngineConfig{});
  Batcher batcher(&engine, BatcherConfig{});
  ServerConfig server_config;
  server_config.port = 0;
  server_config.max_line_bytes = 64;
  SupportServer server(&engine, &batcher, server_config);
  ASSERT_TRUE(server.Start().ok());

  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string runaway(1024, '1');  // no newline in sight
  ASSERT_TRUE(SendAll(fd, runaway));
  std::vector<std::string> lines = ReadLines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("ERR", 0), 0u);
  // The server hangs up after the error: the next read sees EOF.
  char byte = 0;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);
  server.Shutdown();
  batcher.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace ossm
