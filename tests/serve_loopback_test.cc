// In-process loopback test of the full serving stack: TCP front-end ->
// batcher -> engine, answers checked bit-for-bit against a straight scan of
// the database, at 1 and 4 pool threads.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ossm_builder.h"
#include "datagen/quest_generator.h"
#include "parallel/thread_pool.h"
#include "serve/batcher.h"
#include "serve/query_engine.h"
#include "serve/server.h"

namespace ossm {
namespace serve {
namespace {

struct Fixture {
  TransactionDatabase db;
  SegmentSupportMap map;
};

Fixture MakeFixture() {
  QuestConfig config;
  config.num_items = 60;
  config.num_transactions = 2500;
  config.avg_transaction_size = 6;
  config.num_patterns = 15;
  config.seed = 29;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  OSSM_CHECK(db.ok());
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandomGreedy;
  options.target_segments = 20;
  options.transactions_per_page = 125;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, options);
  OSSM_CHECK(build.ok());
  return Fixture{std::move(*db), std::move(build->map)};
}

uint64_t OracleSupport(const TransactionDatabase& db,
                       const Itemset& itemset) {
  uint64_t support = 0;
  for (uint64_t t = 0; t < db.num_transactions(); ++t) {
    if (db.Contains(t, itemset)) ++support;
  }
  return support;
}

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads until `count` newline-terminated lines have arrived (or EOF).
std::vector<std::string> ReadLines(int fd, size_t count) {
  std::vector<std::string> lines;
  std::string buffer;
  char chunk[4096];
  while (lines.size() < count) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (;;) {
      size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      lines.push_back(buffer.substr(start, newline - start));
      start = newline + 1;
    }
    buffer.erase(0, start);
  }
  return lines;
}

// One full client round against a fresh serving stack: pipelined mixed
// queries (rejects, singletons, repeats for the cache, errors), every
// answer checked against the oracle.
void RunLoopbackRound(uint32_t pool_threads) {
  SCOPED_TRACE("pool_threads=" + std::to_string(pool_threads));
  parallel::SetDefaultThreadCount(pool_threads);
  Fixture fx = MakeFixture();
  const uint64_t minsup = fx.db.num_transactions() / 20;  // 5%

  QueryEngineConfig engine_config;
  engine_config.min_support = minsup;
  QueryEngine engine(&fx.db, &fx.map, engine_config);
  BatcherConfig batcher_config;
  batcher_config.max_batch = 16;
  batcher_config.max_delay_us = 200;
  Batcher batcher(&engine, batcher_config);
  ServerConfig server_config;
  server_config.port = 0;
  SupportServer server(&engine, &batcher, server_config);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  struct Expectation {
    std::string line;
    Itemset itemset;  // empty: expect ERR
  };
  std::vector<Expectation> expectations;
  for (ItemId a = 0; a < 40; ++a) {
    expectations.push_back({"Q " + std::to_string(a), {a}});
    Itemset pair = {a, static_cast<ItemId>(a + 17)};
    expectations.push_back(
        {"Q " + std::to_string(a) + " " + std::to_string(a + 17), pair});
  }
  // Repeats: the second occurrence may come from the cache; the answer
  // must not change.
  expectations.push_back({"Q 3 20", {3, 20}});
  expectations.push_back({"Q 3 20", {3, 20}});
  // Errors: out-of-domain item and a non-numeric token.
  expectations.push_back({"Q 5000", {}});
  expectations.push_back({"Q 1 banana", {}});

  std::string payload = "PING\n";
  for (const Expectation& e : expectations) payload += e.line + "\n";
  payload += "STATS\nQUIT\n";

  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, payload));
  std::vector<std::string> lines = ReadLines(fd, expectations.size() + 3);
  ::close(fd);
  ASSERT_EQ(lines.size(), expectations.size() + 3);

  EXPECT_EQ(lines.front(), "PONG");
  EXPECT_EQ(lines.back(), "BYE");
  EXPECT_EQ(lines[lines.size() - 2].rfind("STATS ", 0), 0u);

  for (size_t i = 0; i < expectations.size(); ++i) {
    const Expectation& e = expectations[i];
    const std::string& response = lines[i + 1];
    if (e.itemset.empty()) {
      EXPECT_EQ(response.rfind("ERR", 0), 0u) << e.line << " -> " << response;
      continue;
    }
    uint64_t exact = OracleSupport(fx.db, e.itemset);
    if (response.rfind("OK ", 0) == 0) {
      EXPECT_EQ(std::stoull(response.substr(3)), exact)
          << e.line << " -> " << response;
    } else if (response.rfind("RJ ", 0) == 0) {
      uint64_t bound = std::stoull(response.substr(3));
      EXPECT_LT(bound, minsup) << e.line << " -> " << response;
      EXPECT_LE(exact, bound) << e.line << " -> " << response;
    } else {
      ADD_FAILURE() << e.line << " -> unexpected " << response;
    }
  }

  server.Shutdown();
  batcher.Shutdown();
  // After shutdown the port no longer accepts.
  int refused = ConnectLoopback(server.port());
  if (refused >= 0) ::close(refused);
  EXPECT_LT(refused, 0);
}

TEST(ServeLoopbackTest, AnswersMatchOracleSingleThreaded) {
  RunLoopbackRound(1);
  parallel::SetDefaultThreadCount(parallel::DefaultThreadCount());
}

TEST(ServeLoopbackTest, AnswersMatchOracleFourThreads) {
  RunLoopbackRound(4);
  parallel::SetDefaultThreadCount(parallel::DefaultThreadCount());
}

TEST(ServeLoopbackTest, TwoConnectionsAreIndependent) {
  Fixture fx = MakeFixture();
  QueryEngineConfig engine_config;
  engine_config.min_support = 1;
  QueryEngine engine(&fx.db, &fx.map, engine_config);
  Batcher batcher(&engine, BatcherConfig{});
  ServerConfig server_config;
  server_config.port = 0;
  SupportServer server(&engine, &batcher, server_config);
  ASSERT_TRUE(server.Start().ok());

  int a = ConnectLoopback(server.port());
  int b = ConnectLoopback(server.port());
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_TRUE(SendAll(a, "Q 1 2\nQUIT\n"));
  ASSERT_TRUE(SendAll(b, "PING\nQUIT\n"));
  std::vector<std::string> from_a = ReadLines(a, 2);
  std::vector<std::string> from_b = ReadLines(b, 2);
  ::close(a);
  ::close(b);
  ASSERT_EQ(from_a.size(), 2u);
  ASSERT_EQ(from_b.size(), 2u);
  // {1,2} may or may not clear the bound screen; either way it's answered.
  EXPECT_TRUE(from_a[0].rfind("OK ", 0) == 0 ||
              from_a[0].rfind("RJ ", 0) == 0)
      << from_a[0];
  EXPECT_EQ(from_b[0], "PONG");
  EXPECT_GE(server.connections_accepted(), 2u);
  server.Shutdown();
  batcher.Shutdown();
}

TEST(ServeLoopbackTest, OversizedRequestLineClosesConnection) {
  Fixture fx = MakeFixture();
  QueryEngine engine(&fx.db, &fx.map, QueryEngineConfig{});
  Batcher batcher(&engine, BatcherConfig{});
  ServerConfig server_config;
  server_config.port = 0;
  server_config.max_line_bytes = 64;
  SupportServer server(&engine, &batcher, server_config);
  ASSERT_TRUE(server.Start().ok());

  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string runaway(1024, '1');  // no newline in sight
  ASSERT_TRUE(SendAll(fd, runaway));
  std::vector<std::string> lines = ReadLines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("ERR", 0), 0u);
  // The server hangs up after the error: the next read sees EOF.
  char byte = 0;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);
  server.Shutdown();
  batcher.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace ossm
