#include "serve/protocol.h"

#include <gtest/gtest.h>

namespace ossm {
namespace serve {
namespace {

TEST(ServeProtocolTest, ParsesQueryAndCanonicalizes) {
  StatusOr<Request> request = ParseRequest("Q 5 1 3 1", 0);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->kind, RequestKind::kQuery);
  EXPECT_EQ(request->itemset, (Itemset{1, 3, 5}));
}

TEST(ServeProtocolTest, ParsesControlVerbs) {
  EXPECT_EQ(ParseRequest("PING", 0)->kind, RequestKind::kPing);
  EXPECT_EQ(ParseRequest("INFO", 0)->kind, RequestKind::kInfo);
  EXPECT_EQ(ParseRequest("STATS", 0)->kind, RequestKind::kStats);
  EXPECT_EQ(ParseRequest("QUIT", 0)->kind, RequestKind::kQuit);
}

TEST(ServeProtocolTest, ToleratesCrlfAndExtraWhitespace) {
  StatusOr<Request> request = ParseRequest("Q  2\t7   9 \r", 0);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->itemset, (Itemset{2, 7, 9}));
  EXPECT_EQ(ParseRequest("PING\r", 0)->kind, RequestKind::kPing);
}

TEST(ServeProtocolTest, RejectsMalformedRequests) {
  EXPECT_EQ(ParseRequest("", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("   ", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("FETCH 1", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("Q", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("Q 1 banana", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("Q -3", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("PING now", 0).status().code(),
            StatusCode::kInvalidArgument);
  // 2^32 does not fit an ItemId.
  EXPECT_EQ(ParseRequest("Q 4294967296", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, EnforcesMaxItemsAfterDedup) {
  // Duplicates collapse before the limit applies.
  EXPECT_TRUE(ParseRequest("Q 1 1 1 1 2", 2).ok());
  EXPECT_EQ(ParseRequest("Q 1 2 3", 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, FormatsEachResponseKind) {
  QueryResult exact;
  exact.support = 123;
  exact.tier = QueryTier::kExact;
  EXPECT_EQ(FormatResult(exact), "OK 123 exact");

  QueryResult cached;
  cached.support = 9;
  cached.tier = QueryTier::kCacheHit;
  EXPECT_EQ(FormatResult(cached), "OK 9 cache");

  QueryResult singleton;
  singleton.support = 77;
  singleton.tier = QueryTier::kSingleton;
  EXPECT_EQ(FormatResult(singleton), "OK 77 singleton");

  QueryResult reject;
  reject.support = 4;  // the bound
  reject.tier = QueryTier::kBoundReject;
  EXPECT_EQ(FormatResult(reject), "RJ 4");
}

TEST(ServeProtocolTest, ErrorLinesNeverContainNewlines) {
  std::string line =
      FormatError(Status::InvalidArgument("bad\nmultiline\rmessage"));
  EXPECT_EQ(line.rfind("ERR ", 0), 0u);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find('\r'), std::string::npos);
}

TEST(ServeProtocolTest, ParsesMetricsVerb) {
  EXPECT_EQ(ParseRequest("METRICS", 0)->kind, RequestKind::kMetrics);
  EXPECT_EQ(ParseRequest("METRICS now", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, ParsesSlowlogVerbWithOptionalCount) {
  StatusOr<Request> bare = ParseRequest("SLOWLOG", 0);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->kind, RequestKind::kSlowlog);
  EXPECT_EQ(bare->slowlog_count, 16u);  // documented default

  StatusOr<Request> counted = ParseRequest("SLOWLOG 3", 0);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->slowlog_count, 3u);

  EXPECT_EQ(ParseRequest("SLOWLOG 1 2", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("SLOWLOG many", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("SLOWLOG -1", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, ParsesProfileVerbWithOptionalDuration) {
  StatusOr<Request> bare = ParseRequest("PROFILE", 0);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->kind, RequestKind::kProfile);
  EXPECT_EQ(bare->profile_ms, 200u);  // documented default

  StatusOr<Request> timed = ParseRequest("PROFILE 50", 0);
  ASSERT_TRUE(timed.ok());
  EXPECT_EQ(timed->profile_ms, 50u);

  // A zero-length window is meaningless; the server clamp handles the
  // upper bound, the parser rejects the degenerate lower one.
  EXPECT_EQ(ParseRequest("PROFILE 0", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("PROFILE 100 200", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("PROFILE forever", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("PROFILE -5", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, UnknownVerbErrorListsTheVocabulary) {
  Status status = ParseRequest("EXPLAIN 1 2", 0).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  for (const char* verb : {"Q", "INFO", "STATS", "METRICS", "SLOWLOG",
                           "PROFILE", "PING", "QUIT"}) {
    EXPECT_NE(status.message().find(verb), std::string::npos) << verb;
  }
}

TEST(ServeProtocolTest, EmbeddedNulBytesNeverSurviveIntoErrorLines) {
  // A client can embed NUL inside a request line; the echoing error must
  // not carry it (NUL truncates what C-string consumers see of the line).
  std::string line("Q 1\0garbage", 11);
  StatusOr<Request> request = ParseRequest(line, 0);
  ASSERT_FALSE(request.ok());
  std::string error = FormatError(request.status());
  EXPECT_EQ(error.rfind("ERR ", 0), 0u);
  for (char c : error) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\t')
        << "control byte " << static_cast<int>(c);
  }
  // NUL as its own token gets the same treatment.
  std::string nul_token("Q \0", 3);
  StatusOr<Request> second = ParseRequest(nul_token, 0);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(FormatError(second.status()).find('\0'), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace ossm
