#include "serve/telemetry.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "obs/perf/perf_counters.h"

namespace ossm {
namespace serve {
namespace {

SlowQueryEntry MakeEntry(uint64_t total_us, uint64_t support) {
  SlowQueryEntry entry;
  entry.completed_at_us = 1000;
  entry.total_us = total_us;
  entry.queue_wait_us = total_us / 2;
  entry.tier = QueryTier::kExact;
  entry.support = support;
  entry.frequent = support >= 10;
  entry.itemset = {3, 17};
  return entry;
}

TEST(SlowQueryLogTest, TailIsNewestFirst) {
  SlowQueryLog log(8);
  for (uint64_t i = 1; i <= 3; ++i) log.Add(MakeEntry(i * 100, i));
  std::vector<SlowQueryEntry> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].support, 3u);
  EXPECT_EQ(tail[1].support, 2u);
  EXPECT_EQ(tail[2].support, 1u);
  EXPECT_EQ(log.total_recorded(), 3u);
}

TEST(SlowQueryLogTest, RingOverwritesOldestOnceFull) {
  SlowQueryLog log(4);
  for (uint64_t i = 1; i <= 10; ++i) log.Add(MakeEntry(i, i));
  EXPECT_EQ(log.total_recorded(), 10u);
  std::vector<SlowQueryEntry> tail = log.Tail(100);
  ASSERT_EQ(tail.size(), 4u);  // only the ring survives
  EXPECT_EQ(tail[0].support, 10u);
  EXPECT_EQ(tail[3].support, 7u);
}

TEST(SlowQueryLogTest, ZeroCapacityIsClampedToOne) {
  SlowQueryLog log(0);
  log.Add(MakeEntry(1, 1));
  log.Add(MakeEntry(2, 2));
  std::vector<SlowQueryEntry> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].support, 2u);
}

TEST(ServeTelemetryTest, ConfigFromEnvReadsSlowlogThreshold) {
  ::setenv("OSSM_SLOWLOG_US", "250", 1);
  EXPECT_EQ(ServeTelemetry::ConfigFromEnv().slowlog_threshold_us, 250u);
  ::setenv("OSSM_SLOWLOG_US", "not-a-number", 1);
  EXPECT_EQ(ServeTelemetry::ConfigFromEnv().slowlog_threshold_us, 10'000u);
  ::setenv("OSSM_SLOWLOG_US", "12junk", 1);  // partial parses don't count
  EXPECT_EQ(ServeTelemetry::ConfigFromEnv().slowlog_threshold_us, 10'000u);
  ::unsetenv("OSSM_SLOWLOG_US");
  EXPECT_EQ(ServeTelemetry::ConfigFromEnv().slowlog_threshold_us, 10'000u);
}

TEST(ServeTelemetryTest, RequestsOverThresholdEnterSlowlog) {
  ServeTelemetry::Config config;
  config.slowlog_threshold_us = 500;
  ServeTelemetry telemetry(config, /*now=*/0);

  QueryResult result;
  result.support = 42;
  result.tier = QueryTier::kExact;
  telemetry.RecordRequest({1, 2}, result, 10, 499);   // under: not logged
  telemetry.RecordRequest({1, 2}, result, 10, 500);   // at: logged
  telemetry.RecordRequest({7}, result, 300, 9000);    // over: logged
  EXPECT_EQ(telemetry.slowlog().total_recorded(), 2u);
  EXPECT_EQ(telemetry.request_histogram().count(), 3u);

  std::vector<SlowQueryEntry> tail = telemetry.slowlog().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].total_us, 9000u);
  EXPECT_EQ(tail[0].queue_wait_us, 300u);
  EXPECT_EQ(tail[0].itemset, (Itemset{7}));
}

TEST(ServeTelemetryTest, TierLatenciesLandInTheirHistograms) {
  ServeTelemetry::Config config;
  ServeTelemetry telemetry(config, 0);
  telemetry.RecordTierLatency(QueryTier::kExact, 900);
  telemetry.RecordTierLatency(QueryTier::kCacheHit, 3);
  EXPECT_EQ(telemetry.tier_histogram(QueryTier::kExact).count(), 1u);
  EXPECT_EQ(telemetry.tier_histogram(QueryTier::kExact).max(), 900u);
  EXPECT_EQ(telemetry.tier_histogram(QueryTier::kCacheHit).count(), 1u);
  EXPECT_EQ(telemetry.tier_histogram(QueryTier::kBoundReject).count(), 0u);
}

TEST(ServeTelemetryTest, FormatSlowEntryIsOneStableLine) {
  SlowQueryEntry entry = MakeEntry(800, 12);
  std::string line = ServeTelemetry::FormatSlowEntry(entry, /*now_us=*/1500);
  EXPECT_EQ(line,
            "age_us=500 total_us=800 queue_us=400 tier=exact support=12 "
            "frequent=1 items=3,17");
  // A clock that lags the entry (cross-thread reads) never underflows.
  std::string early = ServeTelemetry::FormatSlowEntry(entry, 0);
  EXPECT_EQ(early.rfind("age_us=0 ", 0), 0u);
}

// Minimal Prometheus text-exposition validator: every line is either a
// `# TYPE <name> <kind>` comment or `<name>[{labels}] <float>`, names are
// [a-zA-Z_:][a-zA-Z0-9_:]*, label blocks are balanced, and every samples
// line is preceded (eventually) by a TYPE for its family.
void ValidateExposition(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t samples = 0;
  auto valid_name = [](const std::string& name) {
    if (name.empty()) return false;
    for (size_t i = 0; i < name.size(); ++i) {
      char c = name[i];
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
      if (!ok) return false;
    }
    return true;
  };
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      std::istringstream fields(line);
      std::string hash, type, name, kind;
      fields >> hash >> type >> name >> kind;
      EXPECT_EQ(hash, "#");
      EXPECT_EQ(type, "TYPE");
      EXPECT_TRUE(valid_name(name)) << line;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "summary")
          << line;
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    std::string value = line.substr(space + 1);
    size_t brace = series.find('{');
    std::string name =
        brace == std::string::npos ? series : series.substr(0, brace);
    EXPECT_TRUE(valid_name(name)) << line;
    if (brace != std::string::npos) {
      EXPECT_EQ(series.back(), '}') << line;
    }
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != nullptr && *end == '\0') << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(ServeTelemetryTest, PrometheusTextIsValidExposition) {
  // Real-clock construction: the windowed reads inside PrometheusText use
  // obs::TraceNowMicros(), so the ring origin must match.
  ServeTelemetry::Config config;
  ServeTelemetry telemetry(config);
  QueryResult result;
  result.support = 7;
  result.tier = QueryTier::kCacheHit;
  telemetry.RecordRequest({4}, result, 5, 60);
  telemetry.RecordTierLatency(QueryTier::kCacheHit, 55);
  telemetry.RecordQueueWait(5);
  telemetry.RecordWaveSize(16);
  telemetry.SetQueueDepth(3);

  ServeCounterInputs inputs;
  inputs.engine.queries = 1;
  inputs.engine.cache_hits = 1;
  inputs.cache_hits = 1;
  inputs.cache_misses = 1;
  inputs.batches = 1;
  inputs.connections = 2;
  inputs.cache_size = 9;
  std::string text = telemetry.PrometheusText(inputs);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  ValidateExposition(text);

  // Spot-check the series the dashboard and scrapers key on.
  for (const char* needle :
       {"# TYPE ossm_serve_queries_total counter",
        "ossm_serve_queries_total 1", "# TYPE ossm_serve_queue_depth gauge",
        "ossm_serve_queue_depth 3",
        "ossm_serve_request_us{window=\"10s\",quantile=\"0.5\"}",
        "ossm_serve_request_us{window=\"1m\",quantile=\"0.99\"}",
        "ossm_serve_request_us_count 1",
        "ossm_serve_tier_us{tier=\"cache\",window=\"10s\",quantile=\"0.95\"}",
        "ossm_serve_tier_us_count{tier=\"cache\"} 1",
        "ossm_serve_cache_hit_ratio_10s 0.5"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(ServeTelemetryTest, PrometheusTextCarriesProcessGauges) {
  ServeTelemetry::Config config;
  ServeTelemetry telemetry(config);
  std::string text = telemetry.PrometheusText(ServeCounterInputs{});
  ValidateExposition(text);
  // The resource gauges are unconditional — they read from getrusage and
  // /proc, which exist everywhere the server runs. ossm_process_ipc is
  // PMU-dependent and intentionally not asserted.
  for (const char* needle :
       {"# TYPE ossm_process_rss_bytes gauge", "ossm_process_rss_bytes ",
        "ossm_process_uptime_seconds ", "ossm_process_open_fds ",
        "ossm_process_threads ", "ossm_process_perf_available "}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  // The flag is strictly boolean (it tracks the inherited process-wide
  // counters, which containers may deny independently of the per-thread
  // probe), and an RSS of zero would mean the /proc parse silently broke.
  // The "\n" prefixes skip the "# TYPE ..." declaration lines.
  EXPECT_TRUE(text.find("\nossm_process_perf_available 1\n") !=
                  std::string::npos ||
              text.find("\nossm_process_perf_available 0\n") !=
                  std::string::npos);
  const char* rss_sample = "\nossm_process_rss_bytes ";
  size_t rss_pos = text.find(rss_sample);
  ASSERT_NE(rss_pos, std::string::npos);
  double rss = std::strtod(
      text.c_str() + rss_pos + std::strlen(rss_sample), nullptr);
  EXPECT_GT(rss, 0.0);
}

TEST(ServeTelemetryTest, WindowedViewsSeeRecordedTraffic) {
  // Real-clock construction, same reason as above.
  ServeTelemetry::Config config;
  ServeTelemetry telemetry(config);
  QueryResult result;
  result.tier = QueryTier::kExact;
  telemetry.RecordRequest({1}, result, 0, 120);
  telemetry.RecordTierLatency(QueryTier::kExact, 120);
  // The windows run on the real monotonic clock; a sample recorded "now"
  // is inside every horizon.
  EXPECT_EQ(telemetry.RequestWindow(ServeTelemetry::kShortWindows).count(),
            1u);
  EXPECT_EQ(telemetry
                .TierWindow(QueryTier::kExact, ServeTelemetry::kLongWindows)
                .count(),
            1u);
  EXPECT_GT(telemetry.Qps(ServeTelemetry::kShortWindows), 0.0);
}

}  // namespace
}  // namespace serve
}  // namespace ossm
