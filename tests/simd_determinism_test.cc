// End-to-end determinism across ISA levels: segmentation, mining, and
// serving must produce bit-identical outputs whether the kernels run scalar
// or vectorized. The kernels are exact mod-2^64 integer reductions, so this
// holds by construction — these tests enforce it on the assembled system,
// flipping the dispatch level mid-process with ForceIsa.

#include <gtest/gtest.h>

#include <vector>

#include "core/ossm_builder.h"
#include "datagen/quest_generator.h"
#include "kernels/kernels.h"
#include "mining/apriori.h"
#include "mining/candidate_pruner.h"
#include "mining/eclat.h"
#include "serve/query_engine.h"

namespace ossm {
namespace {

TransactionDatabase MakeDb(uint64_t seed) {
  QuestConfig config;
  config.num_items = 60;
  config.num_transactions = 2500;
  config.avg_transaction_size = 7;
  config.num_patterns = 10;
  config.seed = seed;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  OSSM_CHECK(db.ok());
  return std::move(*db);
}

struct PipelineOutput {
  SegmentSupportMap map;
  MiningResult apriori;
  MiningResult eclat_lists;
  MiningResult eclat_bitmaps;
  std::vector<serve::QueryResult> answers;
};

PipelineOutput RunPipeline(const TransactionDatabase& db,
                           kernels::Isa isa) {
  kernels::ForceIsa(isa);
  PipelineOutput out;

  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kGreedy;
  options.target_segments = 12;
  options.transactions_per_page = 50;
  StatusOr<OssmBuildResult> build = BuildOssm(db, options);
  OSSM_CHECK(build.ok());
  out.map = std::move(build->map);

  OssmPruner pruner(&out.map);
  AprioriConfig apriori;
  apriori.min_support_fraction = 0.01;
  apriori.pruner = &pruner;
  StatusOr<MiningResult> mined = MineApriori(db, apriori);
  OSSM_CHECK(mined.ok());
  out.apriori = std::move(*mined);

  EclatConfig eclat;
  eclat.min_support_fraction = 0.01;
  eclat.pruner = &pruner;
  eclat.representation = EclatRepresentation::kTidLists;
  StatusOr<MiningResult> lists = MineEclat(db, eclat);
  OSSM_CHECK(lists.ok());
  out.eclat_lists = std::move(*lists);
  eclat.representation = EclatRepresentation::kBitmaps;
  StatusOr<MiningResult> bitmaps = MineEclat(db, eclat);
  OSSM_CHECK(bitmaps.ok());
  out.eclat_bitmaps = std::move(*bitmaps);

  serve::QueryEngineConfig serve_config;
  serve_config.min_support = 25;
  serve_config.bitmap_mode = serve::BitmapMode::kOn;
  SegmentSupportMap map_copy = out.map;
  serve::QueryEngine engine(&db, &map_copy, serve_config);
  std::vector<Itemset> queries;
  for (ItemId a = 0; a < db.num_items(); a += 3) {
    queries.push_back({a});
    if (a + 5 < db.num_items()) queries.push_back({a, static_cast<ItemId>(a + 5)});
    if (a + 9 < db.num_items()) {
      queries.push_back({a, static_cast<ItemId>(a + 4),
                         static_cast<ItemId>(a + 9)});
    }
  }
  StatusOr<std::vector<serve::QueryResult>> answers =
      engine.QueryBatch(queries);
  OSSM_CHECK(answers.ok());
  out.answers = std::move(*answers);
  return out;
}

void ExpectSameStats(const MiningStats& a, const MiningStats& b) {
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (size_t i = 0; i < a.levels.size(); ++i) {
    EXPECT_EQ(a.levels[i].candidates_generated,
              b.levels[i].candidates_generated);
    EXPECT_EQ(a.levels[i].pruned_by_bound, b.levels[i].pruned_by_bound);
    EXPECT_EQ(a.levels[i].candidates_counted,
              b.levels[i].candidates_counted);
    EXPECT_EQ(a.levels[i].abandoned_joins, b.levels[i].abandoned_joins);
    EXPECT_EQ(a.levels[i].frequent, b.levels[i].frequent);
  }
}

TEST(SimdDeterminismTest, PipelineIsBitIdenticalAcrossIsaLevels) {
  kernels::Isa original = kernels::ActiveIsa();
  TransactionDatabase db = MakeDb(42);

  PipelineOutput scalar = RunPipeline(db, kernels::Isa::kScalar);
  for (kernels::Isa isa : kernels::SupportedIsas()) {
    if (isa == kernels::Isa::kScalar) continue;
    PipelineOutput vectored = RunPipeline(db, isa);

    // Same segmentation decisions -> the same map, count for count.
    EXPECT_TRUE(scalar.map == vectored.map)
        << "map diverged at " << kernels::IsaName(isa);

    // Same patterns, same supports, same per-level accounting.
    EXPECT_TRUE(scalar.apriori.SamePatternsAs(vectored.apriori));
    ExpectSameStats(scalar.apriori.stats, vectored.apriori.stats);
    EXPECT_TRUE(scalar.eclat_lists.SamePatternsAs(vectored.eclat_lists));
    ExpectSameStats(scalar.eclat_lists.stats, vectored.eclat_lists.stats);
    EXPECT_TRUE(scalar.eclat_bitmaps.SamePatternsAs(vectored.eclat_bitmaps));
    ExpectSameStats(scalar.eclat_bitmaps.stats,
                    vectored.eclat_bitmaps.stats);

    // Same served answers, tier for tier.
    ASSERT_EQ(scalar.answers.size(), vectored.answers.size());
    for (size_t i = 0; i < scalar.answers.size(); ++i) {
      EXPECT_EQ(scalar.answers[i].support, vectored.answers[i].support);
      EXPECT_EQ(scalar.answers[i].tier, vectored.answers[i].tier);
      EXPECT_EQ(scalar.answers[i].frequent, vectored.answers[i].frequent);
    }
  }
  kernels::ForceIsa(original);
}

// The two Eclat representations are interchangeable: identical pattern
// sets and supports, whatever the dispatch level.
TEST(SimdDeterminismTest, EclatRepresentationsAgree) {
  kernels::Isa original = kernels::ActiveIsa();
  TransactionDatabase db = MakeDb(7);
  for (kernels::Isa isa : kernels::SupportedIsas()) {
    PipelineOutput out = RunPipeline(db, isa);
    EXPECT_TRUE(out.eclat_lists.SamePatternsAs(out.eclat_bitmaps))
        << "representations diverged at " << kernels::IsaName(isa);
    EXPECT_TRUE(out.eclat_lists.SamePatternsAs(out.apriori));
  }
  kernels::ForceIsa(original);
}

}  // namespace
}  // namespace ossm
