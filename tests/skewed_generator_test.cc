#include "datagen/skewed_generator.h"

#include <gtest/gtest.h>

namespace ossm {
namespace {

SkewedConfig SmallConfig() {
  SkewedConfig config;
  config.num_items = 40;
  config.num_transactions = 8000;
  config.avg_transaction_size = 6.0;
  config.num_seasons = 2;
  config.in_season_boost = 8.0;
  config.seed = 3;
  return config;
}

TEST(SkewedGeneratorTest, ProducesRequestedShape) {
  StatusOr<TransactionDatabase> db = GenerateSkewed(SmallConfig());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->num_items(), 40u);
  EXPECT_EQ(db->num_transactions(), 8000u);
}

TEST(SkewedGeneratorTest, Deterministic) {
  StatusOr<TransactionDatabase> a = GenerateSkewed(SmallConfig());
  StatusOr<TransactionDatabase> b = GenerateSkewed(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SkewedGeneratorTest, SeasonalItemsConcentrateInTheirHalf) {
  SkewedConfig config = SmallConfig();
  StatusOr<TransactionDatabase> db = GenerateSkewed(config);
  ASSERT_TRUE(db.ok());

  uint64_t half = db->num_transactions() / 2;
  std::vector<uint64_t> first_half(config.num_items, 0);
  std::vector<uint64_t> second_half(config.num_items, 0);
  for (uint64_t t = 0; t < db->num_transactions(); ++t) {
    auto& counts = (t < half) ? first_half : second_half;
    for (ItemId item : db->transaction(t)) ++counts[item];
  }

  // Season-0 items (even ids) should dominate the first half and season-1
  // items (odd ids) the second half.
  for (uint32_t i = 0; i < config.num_items; ++i) {
    uint64_t in_season = (i % 2 == 0) ? first_half[i] : second_half[i];
    uint64_t out_season = (i % 2 == 0) ? second_half[i] : first_half[i];
    EXPECT_GT(in_season, 2 * out_season) << "item " << i;
  }
}

TEST(SkewedGeneratorTest, NoSkewWithUnitBoost) {
  SkewedConfig config = SmallConfig();
  config.in_season_boost = 1.0;
  StatusOr<TransactionDatabase> db = GenerateSkewed(config);
  ASSERT_TRUE(db.ok());

  uint64_t half = db->num_transactions() / 2;
  std::vector<uint64_t> first_half(config.num_items, 0);
  std::vector<uint64_t> second_half(config.num_items, 0);
  for (uint64_t t = 0; t < db->num_transactions(); ++t) {
    auto& counts = (t < half) ? first_half : second_half;
    for (ItemId item : db->transaction(t)) ++counts[item];
  }
  for (uint32_t i = 0; i < config.num_items; ++i) {
    double total = static_cast<double>(first_half[i] + second_half[i]);
    if (total < 100) continue;
    double ratio = first_half[i] / total;
    EXPECT_NEAR(ratio, 0.5, 0.15) << "item " << i;
  }
}

TEST(SkewedGeneratorTest, SupportsManySeasons) {
  SkewedConfig config = SmallConfig();
  config.num_seasons = 4;
  StatusOr<TransactionDatabase> db = GenerateSkewed(config);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_transactions(), config.num_transactions);
}

TEST(SkewedGeneratorTest, RejectsBadBoost) {
  SkewedConfig config = SmallConfig();
  config.in_season_boost = 0.5;
  EXPECT_EQ(GenerateSkewed(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SkewedGeneratorTest, RejectsZeroSeasons) {
  SkewedConfig config = SmallConfig();
  config.num_seasons = 0;
  EXPECT_EQ(GenerateSkewed(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SkewedGeneratorTest, RejectsMoreSeasonsThanItems) {
  SkewedConfig config = SmallConfig();
  config.num_seasons = config.num_items + 1;
  EXPECT_EQ(GenerateSkewed(config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ossm
