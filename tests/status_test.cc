#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ossm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EveryCodeHasDistinctName) {
  std::vector<StatusCode> codes = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kCorruption,
      StatusCode::kIOError,      StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange,   StatusCode::kUnimplemented,
      StatusCode::kInternal,
  };
  std::vector<std::string> names;
  for (StatusCode c : codes) {
    names.emplace_back(StatusCodeToString(c));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::IOError("disk on fire"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(StatusOrTest, WorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  StatusOr<NoDefault> ok_result(NoDefault(7));
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result->value, 7);

  StatusOr<NoDefault> err_result(Status::Internal("nope"));
  EXPECT_FALSE(err_result.ok());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(result).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailsMidway(bool fail) {
  OSSM_RETURN_IF_ERROR(fail ? Status::OutOfRange("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsMidway(false).ok());
  EXPECT_EQ(FailsMidway(true).code(), StatusCode::kOutOfRange);
}

TEST(StatusTest, CheckDeathOnErroredValueAccess) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_DEATH(result.value(), "value\\(\\) on errored StatusOr");
}

}  // namespace
}  // namespace ossm
