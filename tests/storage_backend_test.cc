#include "storage/storage_env.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "core/ossm_builder.h"
#include "core/ossm_io.h"
#include "data/bitmap_index.h"
#include "data/dataset_io.h"
#include "datagen/quest_generator.h"
#include "mining/apriori.h"
#include "mining/eclat.h"

namespace ossm {
namespace {

using storage::Backend;
using storage::ScopedBackendForTest;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// A synthetic dataset shared by the bit-identity tests: big enough that a
// heap/mmap divergence in CSR layout, bitmap words, or fold order would
// change some support.
std::string WriteSampleDataset(const std::string& name) {
  QuestConfig config;
  config.num_items = 60;
  config.num_transactions = 2000;
  config.avg_transaction_size = 8;
  config.num_patterns = 15;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  EXPECT_TRUE(db.ok());
  std::string path = TempPath(name);
  EXPECT_TRUE(DatasetIo::SaveText(*db, path).ok());
  return path;
}

TEST(StorageBackendTest, ActiveBackendIsOverridableAndNamed) {
  Backend ambient = storage::ActiveBackend();
  {
    ScopedBackendForTest mmap(Backend::kMmap);
    EXPECT_EQ(storage::ActiveBackend(), Backend::kMmap);
    {
      ScopedBackendForTest heap(Backend::kHeap);
      EXPECT_EQ(storage::ActiveBackend(), Backend::kHeap);
    }
    EXPECT_EQ(storage::ActiveBackend(), Backend::kMmap);
  }
  EXPECT_EQ(storage::ActiveBackend(), ambient);
  EXPECT_STREQ(storage::BackendName(Backend::kHeap), "heap");
  EXPECT_STREQ(storage::BackendName(Backend::kMmap), "mmap");
}

TEST(StorageBackendTest, TextLoadIsBitIdenticalAcrossBackends) {
  std::string path = WriteSampleDataset("backend_text.txt");

  StatusOr<TransactionDatabase> heap_db = [&] {
    ScopedBackendForTest heap(Backend::kHeap);
    return DatasetIo::LoadText(path);
  }();
  StatusOr<TransactionDatabase> mmap_db = [&] {
    ScopedBackendForTest mmap(Backend::kMmap);
    return DatasetIo::LoadText(path);
  }();
  ASSERT_TRUE(heap_db.ok()) << heap_db.status().ToString();
  ASSERT_TRUE(mmap_db.ok()) << mmap_db.status().ToString();
  EXPECT_EQ(heap_db->store(), nullptr);
  EXPECT_NE(mmap_db->store(), nullptr);
  EXPECT_EQ(*heap_db, *mmap_db);
  // Derived supports go through the same view plumbing.
  auto heap_supports = heap_db->ComputeItemSupports();
  auto mmap_supports = mmap_db->ComputeItemSupports();
  EXPECT_EQ(heap_supports, mmap_supports);
  std::remove(path.c_str());
}

TEST(StorageBackendTest, BinaryRoundTripIsBitIdenticalAcrossBackends) {
  std::string text = WriteSampleDataset("backend_bin.txt");
  StatusOr<TransactionDatabase> db = DatasetIo::LoadText(text);
  ASSERT_TRUE(db.ok());
  std::string binary = TempPath("backend_bin.db");
  ASSERT_TRUE(DatasetIo::SaveBinary(*db, binary).ok());

  StatusOr<TransactionDatabase> heap_db = [&] {
    ScopedBackendForTest heap(Backend::kHeap);
    return DatasetIo::LoadBinary(binary);
  }();
  StatusOr<TransactionDatabase> mmap_db = [&] {
    ScopedBackendForTest mmap(Backend::kMmap);
    return DatasetIo::LoadBinary(binary);
  }();
  ASSERT_TRUE(heap_db.ok()) << heap_db.status().ToString();
  ASSERT_TRUE(mmap_db.ok()) << mmap_db.status().ToString();
  EXPECT_EQ(*heap_db, *db);
  EXPECT_EQ(*mmap_db, *db);
  std::remove(text.c_str());
  std::remove(binary.c_str());
}

TEST(StorageBackendTest, MappedDatabaseRefusesAppend) {
  std::string path = WriteSampleDataset("backend_frozen.txt");
  ScopedBackendForTest mmap(Backend::kMmap);
  StatusOr<TransactionDatabase> db = DatasetIo::LoadText(path);
  ASSERT_TRUE(db.ok());
  ASSERT_NE(db->store(), nullptr);
  std::vector<ItemId> txn = {1, 2, 3};
  Status status = db->Append(txn);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(StorageBackendTest, CopiesOfMappedStructuresBehaveLikeHeapOnes) {
  std::string path = WriteSampleDataset("backend_copies.txt");
  ScopedBackendForTest mmap(Backend::kMmap);
  StatusOr<TransactionDatabase> db = DatasetIo::LoadText(path);
  ASSERT_TRUE(db.ok());
  // Mapped CSR is immutable, so a copy shares the store.
  TransactionDatabase copy = *db;
  EXPECT_EQ(copy, *db);
  EXPECT_EQ(copy.store(), db->store());

  // The mutable OSSM matrix must NOT be shared: copies deep-copy to heap.
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandom;
  options.target_segments = 6;
  options.transactions_per_page = 100;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, options);
  ASSERT_TRUE(build.ok());
  std::string map_path = TempPath("backend_copies.ossm");
  ASSERT_TRUE(OssmIo::Save(build->map, map_path).ok());
  StatusOr<SegmentSupportMap> mapped = OssmIo::Load(map_path);
  ASSERT_TRUE(mapped.ok());
  ASSERT_NE(mapped->store(), nullptr);
  SegmentSupportMap map_copy = *mapped;
  EXPECT_EQ(map_copy.store(), nullptr);
  EXPECT_EQ(map_copy, *mapped);
  std::remove(path.c_str());
  std::remove(map_path.c_str());
}

TEST(StorageBackendTest, OssmMapLoadsBitIdenticalAcrossBackends) {
  std::string path = WriteSampleDataset("backend_ossm.txt");
  StatusOr<TransactionDatabase> db = DatasetIo::LoadText(path);
  ASSERT_TRUE(db.ok());
  OssmBuildOptions options;
  options.algorithm = SegmentationAlgorithm::kRandom;
  options.target_segments = 8;
  options.transactions_per_page = 100;
  StatusOr<OssmBuildResult> build = BuildOssm(*db, options);
  ASSERT_TRUE(build.ok());
  std::string map_path = TempPath("backend_ossm.ossm");
  ASSERT_TRUE(OssmIo::Save(build->map, map_path).ok());

  StatusOr<SegmentSupportMap> heap_map = [&] {
    ScopedBackendForTest heap(Backend::kHeap);
    return OssmIo::Load(map_path);
  }();
  StatusOr<SegmentSupportMap> mmap_map = [&] {
    ScopedBackendForTest mmap(Backend::kMmap);
    return OssmIo::Load(map_path);
  }();
  ASSERT_TRUE(heap_map.ok()) << heap_map.status().ToString();
  ASSERT_TRUE(mmap_map.ok()) << mmap_map.status().ToString();
  EXPECT_EQ(heap_map->store(), nullptr);
  ASSERT_NE(mmap_map->store(), nullptr);
  EXPECT_EQ(*heap_map, *mmap_map);
  EXPECT_EQ(*heap_map, build->map);
  // Bounds evaluate bit-identically through the mapped matrix.
  Itemset probe = {2, 11, 23};
  EXPECT_EQ(heap_map->UpperBound(probe), mmap_map->UpperBound(probe));
  std::remove(path.c_str());
  std::remove(map_path.c_str());
}

TEST(StorageBackendTest, BitmapIndexRowsMatchAcrossBackends) {
  std::string path = WriteSampleDataset("backend_bitmap.txt");
  StatusOr<TransactionDatabase> db = DatasetIo::LoadText(path);
  ASSERT_TRUE(db.ok());

  BitmapIndex heap_index = [&] {
    ScopedBackendForTest heap(Backend::kHeap);
    return BitmapIndex::Build(*db);
  }();
  BitmapIndex mmap_index = [&] {
    ScopedBackendForTest mmap(Backend::kMmap);
    return BitmapIndex::Build(*db);
  }();
  EXPECT_EQ(heap_index.store(), nullptr);
  ASSERT_NE(mmap_index.store(), nullptr);
  ASSERT_EQ(heap_index.words_per_row(), mmap_index.words_per_row());
  for (ItemId item = 0; item < db->num_items(); ++item) {
    auto heap_row = heap_index.row(item);
    auto mmap_row = mmap_index.row(item);
    ASSERT_TRUE(std::equal(heap_row.begin(), heap_row.end(),
                           mmap_row.begin()))
        << "item " << item;
  }
  std::remove(path.c_str());
}

// The acceptance property: mining answers must be bit-identical across
// backends, for both miner families, end to end through a mapped load.
TEST(StorageBackendTest, MiningIsBitIdenticalAcrossBackends) {
  std::string path = WriteSampleDataset("backend_mine.txt");

  auto mine = [&](Backend backend) {
    ScopedBackendForTest scoped(backend);
    StatusOr<TransactionDatabase> db = DatasetIo::LoadText(path);
    EXPECT_TRUE(db.ok());
    AprioriConfig apriori;
    apriori.min_support_fraction = 0.02;
    StatusOr<MiningResult> apriori_result = MineApriori(*db, apriori);
    EXPECT_TRUE(apriori_result.ok());
    EclatConfig eclat;
    eclat.min_support_fraction = 0.02;
    StatusOr<MiningResult> eclat_tids = [&] {
      EclatConfig config = eclat;
      config.representation = EclatRepresentation::kTidLists;
      return MineEclat(*db, config);
    }();
    StatusOr<MiningResult> eclat_bits = [&] {
      EclatConfig config = eclat;
      config.representation = EclatRepresentation::kBitmaps;
      return MineEclat(*db, config);
    }();
    EXPECT_TRUE(eclat_tids.ok());
    EXPECT_TRUE(eclat_bits.ok());
    return std::make_tuple(std::move(apriori_result).value().itemsets,
                           std::move(eclat_tids).value().itemsets,
                           std::move(eclat_bits).value().itemsets);
  };

  auto heap = mine(Backend::kHeap);
  auto mmap = mine(Backend::kMmap);
  ASSERT_FALSE(std::get<0>(heap).empty());
  EXPECT_EQ(std::get<0>(heap), std::get<0>(mmap));  // Apriori
  EXPECT_EQ(std::get<1>(heap), std::get<1>(mmap));  // Eclat tid-lists
  EXPECT_EQ(std::get<2>(heap), std::get<2>(mmap));  // Eclat bitmaps
  // The two Eclat representations agree with Apriori on both backends.
  EXPECT_EQ(std::get<0>(heap), std::get<1>(heap));
  EXPECT_EQ(std::get<0>(heap), std::get<2>(heap));
  EXPECT_EQ(std::get<0>(mmap), std::get<1>(mmap));
  EXPECT_EQ(std::get<0>(mmap), std::get<2>(mmap));
  std::remove(path.c_str());
}

TEST(StorageBackendTest, LiveStoresReportsMappedStores) {
  std::string path = WriteSampleDataset("backend_live.txt");
  ScopedBackendForTest mmap(Backend::kMmap);
  StatusOr<TransactionDatabase> db = DatasetIo::LoadText(path);
  ASSERT_TRUE(db.ok());
  ASSERT_NE(db->store(), nullptr);
  bool found = false;
  for (const storage::StoreInfo& info : storage::LiveStores()) {
    if (info.path == db->store()->path()) {
      found = true;
      EXPECT_EQ(info.page_size, db->store()->page_size());
      EXPECT_GT(info.file_bytes, 0u);
    }
  }
  EXPECT_TRUE(found);
  storage::PublishStorageGauges();  // must not crash with live stores
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ossm
