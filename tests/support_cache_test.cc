#include "serve/support_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ossm {
namespace serve {
namespace {

Itemset Items(std::initializer_list<ItemId> items) { return Itemset(items); }

TEST(SupportCacheTest, InsertThenLookupRoundTrips) {
  SupportCache cache(16, 4);
  cache.Insert(Items({1, 2, 3}), 42);
  uint64_t support = 0;
  EXPECT_TRUE(cache.Lookup(Items({1, 2, 3}), &support));
  EXPECT_EQ(support, 42u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SupportCacheTest, MissLeavesOutputUntouched) {
  SupportCache cache(16, 4);
  uint64_t support = 7;
  EXPECT_FALSE(cache.Lookup(Items({9}), &support));
  EXPECT_EQ(support, 7u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(SupportCacheTest, InsertRefreshesExistingEntry) {
  SupportCache cache(16, 1);
  cache.Insert(Items({5}), 10);
  cache.Insert(Items({5}), 11);
  uint64_t support = 0;
  EXPECT_TRUE(cache.Lookup(Items({5}), &support));
  EXPECT_EQ(support, 11u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SupportCacheTest, EvictsLeastRecentlyUsedPerShard) {
  SupportCache cache(3, 1);  // one shard, room for three
  cache.Insert(Items({1}), 1);
  cache.Insert(Items({2}), 2);
  cache.Insert(Items({3}), 3);
  // Touch {1} so {2} becomes the LRU victim.
  uint64_t support = 0;
  ASSERT_TRUE(cache.Lookup(Items({1}), &support));
  cache.Insert(Items({4}), 4);
  EXPECT_FALSE(cache.Lookup(Items({2}), &support));
  EXPECT_TRUE(cache.Lookup(Items({1}), &support));
  EXPECT_TRUE(cache.Lookup(Items({3}), &support));
  EXPECT_TRUE(cache.Lookup(Items({4}), &support));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SupportCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  SupportCache cache(64, 3);
  EXPECT_EQ(cache.num_shards(), 4u);
  SupportCache one(64, 0);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(SupportCacheTest, ShardCountClampedByCapacity) {
  SupportCache cache(2, 16);  // cannot give 16 shards a slot each
  EXPECT_LE(cache.num_shards(), 2u);
  cache.Insert(Items({1}), 1);
  cache.Insert(Items({2}), 2);
  uint64_t support = 0;
  EXPECT_TRUE(cache.Lookup(Items({1}), &support) ||
              cache.Lookup(Items({2}), &support));
}

TEST(SupportCacheTest, ClearDropsEverything) {
  SupportCache cache(16, 4);
  for (ItemId i = 0; i < 10; ++i) cache.Insert(Items({i}), i);
  EXPECT_GT(cache.size(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  uint64_t support = 0;
  EXPECT_FALSE(cache.Lookup(Items({3}), &support));
}

TEST(SupportCacheTest, PrefixItemsetsDoNotAlias) {
  // {1} vs {1,2} vs {1,2,3}: hashing must distinguish lengths.
  SupportCache cache(16, 1);
  cache.Insert(Items({1}), 100);
  cache.Insert(Items({1, 2}), 200);
  cache.Insert(Items({1, 2, 3}), 300);
  uint64_t support = 0;
  ASSERT_TRUE(cache.Lookup(Items({1}), &support));
  EXPECT_EQ(support, 100u);
  ASSERT_TRUE(cache.Lookup(Items({1, 2}), &support));
  EXPECT_EQ(support, 200u);
  ASSERT_TRUE(cache.Lookup(Items({1, 2, 3}), &support));
  EXPECT_EQ(support, 300u);
}

TEST(SupportCacheTest, ManyDistinctItemsetsAllRetrievable) {
  // One shard so nothing can evict below the total capacity: this test is
  // about hash-collision resolution, not shard balance.
  SupportCache cache(1024, 1);
  for (ItemId i = 0; i < 500; ++i) {
    cache.Insert(Items({i, static_cast<ItemId>(i + 1000)}), i * 3);
  }
  for (ItemId i = 0; i < 500; ++i) {
    uint64_t support = 0;
    ASSERT_TRUE(cache.Lookup(Items({i, static_cast<ItemId>(i + 1000)}),
                             &support))
        << "itemset " << i;
    EXPECT_EQ(support, i * 3u);
  }
}

// Hammer the cache from several threads; correctness here is "TSan-clean
// and every hit returns the value some Insert wrote for that key".
TEST(SupportCacheTest, ConcurrentMixedTrafficIsSafe) {
  SupportCache cache(256, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (uint32_t round = 0; round < 2000; ++round) {
        ItemId a = (round * 7 + static_cast<uint32_t>(t)) % 64;
        Itemset key = {a, a + 64};
        cache.Insert(key, a);
        uint64_t support = 0;
        if (cache.Lookup(key, &support)) {
          ASSERT_EQ(support, a);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(cache.hits() + cache.misses(), 4u * 2000u);
}

}  // namespace
}  // namespace serve
}  // namespace ossm
