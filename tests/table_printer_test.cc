#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ossm {
namespace {

TEST(TablePrinterTest, PrintsHeaderRuleAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TablePrinterTest, ColumnsAreAligned) {
  TablePrinter table({"algorithm", "t"});
  table.AddRow({"RC", "1"});
  table.AddRow({"Random-Greedy", "2"});
  std::ostringstream out;
  table.Print(out);
  std::istringstream lines(out.str());
  std::string header;
  std::string rule;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  // The second column starts at the same offset in each data row.
  EXPECT_EQ(row1.find_last_of('1'), row2.find_last_of('2'));
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatDouble(0.5, 3), "0.500");
  EXPECT_EQ(TablePrinter::FormatDouble(-2.0, 1), "-2.0");
}

TEST(TablePrinterTest, FormatCount) {
  EXPECT_EQ(TablePrinter::FormatCount(0), "0");
  EXPECT_EQ(TablePrinter::FormatCount(123456789), "123456789");
  EXPECT_EQ(TablePrinter::FormatCount(UINT64_MAX), "18446744073709551615");
}

TEST(TablePrinterTest, MismatchedRowWidthDies) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "Check failed");
}

TEST(TablePrinterTest, NumRows) {
  TablePrinter table({"x"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace ossm
