#include "core/theory.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "core/segment_support_map.h"
#include "datagen/quest_generator.h"

namespace ossm {
namespace {

// Enumerates every non-empty itemset over a small domain and checks the
// OSSM's bound against the true support.
void ExpectExactForAllItemsets(const TransactionDatabase& db,
                               const SegmentSupportMap& map) {
  uint32_t m = db.num_items();
  ASSERT_LE(m, 12u);
  for (uint32_t mask = 1; mask < (1u << m); ++mask) {
    Itemset items;
    for (uint32_t i = 0; i < m; ++i) {
      if (mask & (1u << i)) items.push_back(i);
    }
    uint64_t actual = 0;
    for (uint64_t t = 0; t < db.num_transactions(); ++t) {
      if (db.Contains(t, items)) ++actual;
    }
    EXPECT_EQ(map.UpperBound(items), actual)
        << "itemset mask " << mask << " should be exact";
  }
}

TEST(TheoryTest, ConfigurationSpaceSizeSmallCases) {
  EXPECT_EQ(ConfigurationSpaceSize(0), 0u);
  EXPECT_EQ(ConfigurationSpaceSize(1), 1u);   // 2^1 - 1
  EXPECT_EQ(ConfigurationSpaceSize(2), 2u);   // 2^2 - 2
  EXPECT_EQ(ConfigurationSpaceSize(3), 5u);   // 2^3 - 3
  EXPECT_EQ(ConfigurationSpaceSize(10), 1014u);
}

TEST(TheoryTest, ConfigurationSpaceSizeSaturates) {
  EXPECT_EQ(ConfigurationSpaceSize(64), UINT64_MAX);
  EXPECT_EQ(ConfigurationSpaceSize(200), UINT64_MAX);
}

TEST(TheoryTest, PaperExample2MinimumIsTwo) {
  // Example 2: six transactions over items a=0, b=1; the minimum number of
  // segments for exactness is 2 (configs <a>=b> and <b>=a>).
  TransactionDatabase db(2);
  ASSERT_TRUE(db.Append({0}).ok());        // t1 = {a}
  ASSERT_TRUE(db.Append({0, 1}).ok());     // t2 = {a, b}
  ASSERT_TRUE(db.Append({0}).ok());        // t3 = {a}
  ASSERT_TRUE(db.Append({0}).ok());        // t4 = {a}
  ASSERT_TRUE(db.Append({1}).ok());        // t5 = {b}
  ASSERT_TRUE(db.Append({1}).ok());        // t6 = {b}
  EXPECT_EQ(MinimumSegments(db), 2u);

  std::vector<Segment> exact = BuildExactSegments(db);
  ASSERT_EQ(exact.size(), 2u);
  SegmentSupportMap map =
      SegmentSupportMap::FromSegments(std::span<const Segment>(exact));
  // The paper's S1' = {t1..t4} (counts a=4, b=1), S2' = {t5, t6} (0, 2).
  Itemset ab = {0, 1};
  EXPECT_EQ(map.UpperBound(ab), 1u);  // exact support of {a,b}
  ExpectExactForAllItemsets(db, map);
}

TEST(TheoryTest, ExactConstructionIsExactOnRandomSmallDomains) {
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t m = 2 + static_cast<uint32_t>(rng.UniformInt(5));
    TransactionDatabase db(m);
    uint64_t n = 20 + rng.UniformInt(60);
    for (uint64_t t = 0; t < n; ++t) {
      Itemset txn;
      for (uint32_t i = 0; i < m; ++i) {
        if (rng.Bernoulli(0.4)) txn.push_back(i);
      }
      ASSERT_TRUE(db.Append(txn).ok());
    }
    std::vector<Segment> exact = BuildExactSegments(db);
    SegmentSupportMap map =
        SegmentSupportMap::FromSegments(std::span<const Segment>(exact));
    ExpectExactForAllItemsets(db, map);

    // Theorem 1's cap: n_min <= min(N, 2^m - m).
    EXPECT_LE(exact.size(), db.num_transactions());
    EXPECT_LE(exact.size(), ConfigurationSpaceSize(m));
  }
}

TEST(TheoryTest, CanonicalPrefixContentsShareOneConfiguration) {
  // The counting argument behind 2^m - m: the m "canonical prefix"
  // contents {x1}, {x1,x2}, ..., {x1..xm} all have the same configuration,
  // so transactions with those contents end up in one segment.
  TransactionDatabase db(4);
  ASSERT_TRUE(db.Append({0}).ok());
  ASSERT_TRUE(db.Append({0, 1}).ok());
  ASSERT_TRUE(db.Append({0, 1, 2}).ok());
  ASSERT_TRUE(db.Append({0, 1, 2, 3}).ok());
  EXPECT_EQ(MinimumSegments(db), 1u);
}

TEST(TheoryTest, DistinctNonPrefixContentsStayApart) {
  TransactionDatabase db(3);
  ASSERT_TRUE(db.Append({0}).ok());
  ASSERT_TRUE(db.Append({1}).ok());
  ASSERT_TRUE(db.Append({2}).ok());
  ASSERT_TRUE(db.Append({1, 2}).ok());
  // Configs: (0,1,2), (1,0,2), (2,0,1), (1,2,0) — all distinct.
  EXPECT_EQ(MinimumSegments(db), 4u);
}

TEST(TheoryTest, MergeSameConfigurationPreservesAllBounds) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    // Random segments over 4 items with heavy tie probability so groups
    // actually form.
    std::vector<Segment> segments;
    for (int s = 0; s < 12; ++s) {
      Segment seg;
      seg.counts.resize(4);
      for (auto& c : seg.counts) c = rng.UniformInt(3) * 5;
      segments.push_back(std::move(seg));
    }
    SegmentSupportMap before =
        SegmentSupportMap::FromSegments(std::span<const Segment>(segments));
    std::vector<Segment> merged = MergeSameConfiguration(std::move(segments));
    SegmentSupportMap after =
        SegmentSupportMap::FromSegments(std::span<const Segment>(merged));

    for (uint32_t mask = 1; mask < 16; ++mask) {
      Itemset items;
      for (uint32_t i = 0; i < 4; ++i) {
        if (mask & (1u << i)) items.push_back(i);
      }
      EXPECT_EQ(before.UpperBound(items), after.UpperBound(items))
          << "trial " << trial << " mask " << mask;
    }
  }
}

TEST(TheoryTest, PageVersionMinimum) {
  // Corollary 1 on a concrete paged collection.
  TransactionDatabase db(2);
  // Page 1: a-heavy. Page 2: b-heavy. Page 3: a-heavy again.
  ASSERT_TRUE(db.Append({0}).ok());
  ASSERT_TRUE(db.Append({0}).ok());
  ASSERT_TRUE(db.Append({1}).ok());
  ASSERT_TRUE(db.Append({1}).ok());
  ASSERT_TRUE(db.Append({0}).ok());
  ASSERT_TRUE(db.Append({0, 1}).ok());
  StatusOr<PageLayout> layout = MakePageLayout(db, 2);
  ASSERT_TRUE(layout.ok());
  PageItemCounts counts(db, *layout);
  // Page configs: (a>=b), (b>=a), (a>=b) -> 2 distinct.
  EXPECT_EQ(MinimumSegmentsForPages(counts), 2u);
}

TEST(TheoryTest, PaperExample4CombinationCounts) {
  // "for p=5, n=3 there are 25 possible combinations ... 90 and 301 for
  // p=6 and p=7".
  EXPECT_EQ(CountSegmentations(5, 3), 25u);
  EXPECT_EQ(CountSegmentations(6, 3), 90u);
  EXPECT_EQ(CountSegmentations(7, 3), 301u);
}

TEST(TheoryTest, CombinationCountEdgeCases) {
  EXPECT_EQ(CountSegmentations(5, 0), 0u);
  EXPECT_EQ(CountSegmentations(3, 5), 0u);
  EXPECT_EQ(CountSegmentations(4, 4), 1u);
  EXPECT_EQ(CountSegmentations(4, 1), 1u);
  EXPECT_EQ(CountSegmentations(100, 50), UINT64_MAX);  // saturates
}

TEST(TheoryTest, MinimumSegmentsNeverExceedsTransactionsOnRealData) {
  QuestConfig config;
  config.num_items = 12;
  config.num_transactions = 300;
  config.avg_transaction_size = 4;
  config.avg_pattern_size = 3;
  config.num_patterns = 6;
  StatusOr<TransactionDatabase> db = GenerateQuest(config);
  ASSERT_TRUE(db.ok());
  uint64_t n_min = MinimumSegments(*db);
  EXPECT_LE(n_min, db->num_transactions());
  EXPECT_LE(n_min, ConfigurationSpaceSize(config.num_items));
  EXPECT_GT(n_min, 1u);
}

}  // namespace
}  // namespace ossm
