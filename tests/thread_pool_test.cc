#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace ossm {
namespace parallel {
namespace {

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<uint64_t> calls{0};
  pool.ParallelFor(0, 0, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  pool.ParallelFor(7, 7, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  pool.ParallelForEach(0, [&](uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  uint32_t shards_seen = 0;
  pool.ParallelFor(0, 100, [&](uint32_t shard, uint64_t begin, uint64_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(shard, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    ++shards_seen;
  });
  EXPECT_EQ(shards_seen, 1u);
}

TEST(ThreadPoolTest, FewerItemsThanThreadsGetsOneShardPerItem) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.NumShards(0, 3), 3u);
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> shards;
  pool.ParallelFor(0, 3, [&](uint32_t shard, uint64_t begin, uint64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_LT(shard, 3u);
    shards.push_back({begin, end});
  });
  ASSERT_EQ(shards.size(), 3u);
  // Every shard holds exactly one item; together they cover the range.
  std::set<uint64_t> covered;
  for (const auto& [begin, end] : shards) {
    EXPECT_EQ(end - begin, 1u);
    covered.insert(begin);
  }
  EXPECT_EQ(covered, (std::set<uint64_t>{0, 1, 2}));
}

TEST(ThreadPoolTest, ShardsPartitionTheRangeInOrder) {
  ThreadPool pool(4);
  const uint64_t kBegin = 13, kEnd = 1013;
  uint32_t shards = pool.NumShards(kBegin, kEnd);
  ASSERT_EQ(shards, 4u);
  std::vector<std::pair<uint64_t, uint64_t>> bounds(shards);
  pool.ParallelFor(kBegin, kEnd,
                   [&](uint32_t shard, uint64_t begin, uint64_t end) {
                     bounds[shard] = {begin, end};
                   });
  EXPECT_EQ(bounds.front().first, kBegin);
  EXPECT_EQ(bounds.back().second, kEnd);
  for (uint32_t s = 0; s + 1 < shards; ++s) {
    EXPECT_EQ(bounds[s].second, bounds[s + 1].first);  // contiguous
    EXPECT_LT(bounds[s].first, bounds[s].second);      // non-empty
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryElementExactlyOnce) {
  ThreadPool pool(6);
  const uint64_t kN = 10000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  pool.ParallelFor(0, kN, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1u) << i;
}

TEST(ThreadPoolTest, ParallelForEachVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(6);
  const uint64_t kN = 10000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  pool.ParallelForEach(kN, [&](uint64_t i) { hits[i].fetch_add(1); });
  for (uint64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1u) << i;
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstExceptionByShardOrder) {
  ThreadPool pool(4);
  // Shards 1 and 3 both throw; the rethrown exception must be shard 1's —
  // by shard order, not by wall-clock completion order.
  try {
    pool.ParallelFor(0, 400, [&](uint32_t shard, uint64_t, uint64_t) {
      if (shard == 1 || shard == 3) {
        throw std::runtime_error("shard " + std::to_string(shard));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 1");
  }
}

TEST(ThreadPoolTest, ParallelForEachPropagatesLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.ParallelForEach(100, [&](uint64_t i) {
      if (i == 17 || i == 3 || i == 99) {
        throw std::runtime_error("index " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 3");
  }
}

TEST(ThreadPoolTest, PoolSurvivesAnExceptionalBatch) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelForEach(
                   10, [](uint64_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The next batch must run normally on the same pool.
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 100, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, NestedParallelismDegradesToSerial) {
  ThreadPool pool(4);
  std::atomic<uint64_t> inner_total{0};
  pool.ParallelFor(0, 4, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      // Inside a pool task the pool reports one shard and runs inline on
      // this worker — no handoff back to a saturated queue, no deadlock.
      EXPECT_EQ(pool.NumShards(0, 1000), 1u);
      std::thread::id worker = std::this_thread::get_id();
      pool.ParallelFor(0, 10, [&](uint32_t shard, uint64_t b, uint64_t e) {
        EXPECT_EQ(shard, 0u);
        EXPECT_EQ(std::this_thread::get_id(), worker);
        inner_total += e - b;
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 40u);
}

TEST(ThreadPoolTest, DefaultPoolRespectsSetDefaultThreadCount) {
  SetDefaultThreadCount(3);
  EXPECT_EQ(DefaultPool().num_threads(), 3u);
  EXPECT_EQ(NumShards(0, 1000), 3u);
  std::atomic<uint64_t> calls{0};
  ParallelForEach(5, [&](uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 5u);
  SetDefaultThreadCount(1);
  EXPECT_EQ(NumShards(0, 1000), 1u);
}

}  // namespace
}  // namespace parallel
}  // namespace ossm
