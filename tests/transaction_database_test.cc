#include "data/transaction_database.h"

#include <gtest/gtest.h>

#include <vector>

namespace ossm {
namespace {

TEST(TransactionDatabaseTest, EmptyDatabase) {
  TransactionDatabase db(10);
  EXPECT_EQ(db.num_items(), 10u);
  EXPECT_EQ(db.num_transactions(), 0u);
  EXPECT_EQ(db.total_item_occurrences(), 0u);
}

TEST(TransactionDatabaseTest, AppendAndRead) {
  TransactionDatabase db(5);
  ASSERT_TRUE(db.Append({0, 2, 4}).ok());
  ASSERT_TRUE(db.Append({1}).ok());
  ASSERT_TRUE(db.Append({}).ok());
  ASSERT_EQ(db.num_transactions(), 3u);

  std::span<const ItemId> t0 = db.transaction(0);
  ASSERT_EQ(t0.size(), 3u);
  EXPECT_EQ(t0[0], 0u);
  EXPECT_EQ(t0[1], 2u);
  EXPECT_EQ(t0[2], 4u);
  EXPECT_EQ(db.transaction(1).size(), 1u);
  EXPECT_EQ(db.transaction(2).size(), 0u);
}

TEST(TransactionDatabaseTest, RejectsOutOfDomainItem) {
  TransactionDatabase db(3);
  Status s = db.Append({0, 3});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.num_transactions(), 0u);  // unchanged on failure
}

TEST(TransactionDatabaseTest, RejectsUnsortedTransaction) {
  TransactionDatabase db(5);
  EXPECT_EQ(db.Append({2, 1}).code(), StatusCode::kInvalidArgument);
}

TEST(TransactionDatabaseTest, RejectsDuplicateItems) {
  TransactionDatabase db(5);
  EXPECT_EQ(db.Append({1, 1}).code(), StatusCode::kInvalidArgument);
}

TEST(TransactionDatabaseTest, ComputeItemSupports) {
  TransactionDatabase db(4);
  ASSERT_TRUE(db.Append({0, 1}).ok());
  ASSERT_TRUE(db.Append({1, 2}).ok());
  ASSERT_TRUE(db.Append({1}).ok());
  std::vector<uint64_t> supports = db.ComputeItemSupports();
  EXPECT_EQ(supports, (std::vector<uint64_t>{1, 3, 1, 0}));
}

TEST(TransactionDatabaseTest, ContainsChecksSubset) {
  TransactionDatabase db(6);
  ASSERT_TRUE(db.Append({0, 2, 3, 5}).ok());
  Itemset yes = {2, 5};
  Itemset no = {2, 4};
  Itemset empty;
  EXPECT_TRUE(db.Contains(0, yes));
  EXPECT_FALSE(db.Contains(0, no));
  EXPECT_TRUE(db.Contains(0, empty));
}

TEST(TransactionDatabaseTest, EqualityOperator) {
  TransactionDatabase a(3);
  TransactionDatabase b(3);
  ASSERT_TRUE(a.Append({0, 1}).ok());
  ASSERT_TRUE(b.Append({0, 1}).ok());
  EXPECT_EQ(a, b);
  ASSERT_TRUE(b.Append({2}).ok());
  EXPECT_FALSE(a == b);
}

TEST(TransactionDatabaseTest, TotalOccurrencesTracksAppends) {
  TransactionDatabase db(10);
  ASSERT_TRUE(db.Append({0, 1, 2}).ok());
  ASSERT_TRUE(db.Append({5, 9}).ok());
  EXPECT_EQ(db.total_item_occurrences(), 5u);
}

TEST(TransactionDatabaseTest, CopyIsIndependent) {
  TransactionDatabase a(3);
  ASSERT_TRUE(a.Append({0}).ok());
  TransactionDatabase b = a;
  ASSERT_TRUE(b.Append({1, 2}).ok());
  EXPECT_EQ(a.num_transactions(), 1u);
  EXPECT_EQ(b.num_transactions(), 2u);
}

}  // namespace
}  // namespace ossm
