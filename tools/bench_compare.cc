// bench_compare — the benchmark-regression gate.
//
//   bench_compare <baseline.json> <candidate.json> [--flags]
//
// Both inputs are RunReport JSON documents (BENCH_<name>.json from the
// bench harnesses, or `ossm_cli --report=` output). Every phase, headline
// value, and counter present in the baseline is classified as improvement /
// noise / regression against the candidate using relative thresholds plus a
// min-absolute-time floor, the verdicts are printed as a table, and the
// exit status is the gate: 0 when clean, 1 on any regression (or, with
// --fail-on-missing, on metrics that vanished), 2 on usage/parse errors.
//
// Flags:
//   --time-rel=0.10        relative wall-clock threshold (fraction)
//   --time-floor-ms=50     phases faster than this in BOTH runs are noise
//   --count-rel=0.02       relative counter threshold (fraction)
//   --value-rel=0.10       relative headline-value threshold (fraction)
//   --spans                also compare per-span total_us
//   --fail-on-missing      metrics present only in the baseline fail the gate
//   --report-only          print the table but always exit 0 (except on
//                          parse errors); for cross-machine comparisons
//                          where wall-clock gating would be noise

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/report.h"

namespace ossm {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare <baseline.json> <candidate.json>\n"
      "       [--time-rel=F] [--time-floor-ms=F] [--count-rel=F]\n"
      "       [--value-rel=F] [--spans] [--fail-on-missing] "
      "[--report-only]\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  obs::CompareOptions options;
  bool fail_on_missing = false;
  bool report_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (baseline_path.empty()) {
        baseline_path = arg;
      } else if (candidate_path.empty()) {
        candidate_path = arg;
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        return Usage();
      }
      continue;
    }
    size_t eq = arg.find('=');
    std::string key = arg.substr(2, eq == std::string::npos
                                        ? std::string::npos
                                        : eq - 2);
    std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "time-rel") {
      options.time_rel_threshold = std::strtod(value.c_str(), nullptr);
    } else if (key == "time-floor-ms") {
      options.time_floor_seconds = std::strtod(value.c_str(), nullptr) / 1e3;
    } else if (key == "count-rel") {
      options.count_rel_threshold = std::strtod(value.c_str(), nullptr);
    } else if (key == "value-rel") {
      options.value_rel_threshold = std::strtod(value.c_str(), nullptr);
    } else if (key == "spans") {
      options.include_span_totals = true;
    } else if (key == "fail-on-missing") {
      fail_on_missing = true;
    } else if (key == "report-only") {
      report_only = true;
    } else {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      return Usage();
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) return Usage();

  StatusOr<obs::RunReport> baseline = obs::LoadRunReportFile(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "error: %s\n", baseline.status().ToString().c_str());
    return 2;
  }
  StatusOr<obs::RunReport> candidate = obs::LoadRunReportFile(candidate_path);
  if (!candidate.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 candidate.status().ToString().c_str());
    return 2;
  }

  std::printf("baseline:  %s (%s, rev %s)\n", baseline_path.c_str(),
              baseline->name.c_str(), baseline->environment.git_rev.c_str());
  std::printf("candidate: %s (%s, rev %s)\n\n", candidate_path.c_str(),
              candidate->name.c_str(), candidate->environment.git_rev.c_str());

  obs::ReportComparison comparison =
      obs::CompareReports(*baseline, *candidate, options);
  obs::PrintComparison(comparison, std::cout);

  if (comparison.new_metrics > 0) {
    std::fprintf(stderr,
                 "warning: %d metric(s) present in the candidate but absent "
                 "from the baseline were skipped, not gated; regenerate the "
                 "baseline (tools/make_baselines.sh) to cover them\n",
                 comparison.new_metrics);
  }

  if (report_only) {
    if (comparison.ShouldFail(fail_on_missing)) {
      std::printf("(--report-only: regressions reported, gate not applied)\n");
    }
    return 0;
  }
  return comparison.ShouldFail(fail_on_missing) ? 1 : 0;
}

}  // namespace
}  // namespace ossm

int main(int argc, char** argv) { return ossm::Main(argc, argv); }
