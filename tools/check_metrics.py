#!/usr/bin/env python3
"""Scrape METRICS/SLOWLOG from a running support server and validate them.

Usage: check_metrics.py PORT [HOST]

A stand-in for promtool in CI: connects over the line protocol, reads the
framed METRICS and SLOWLOG bodies, and checks that the METRICS body is
well-formed Prometheus text exposition (every line is a `# TYPE` comment
with a known kind or a `series value` sample with a parseable float) and
that the core serving series are present. Exits non-zero with a message
on the first violation.
"""

import re
import socket
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary)$")
# A sample line: name, optional {labels}, single space, float value.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$")

REQUIRED_SERIES = [
    "ossm_serve_queries_total",
    "ossm_serve_cache_size",
    "ossm_serve_queue_depth",
    'ossm_serve_request_us{window="10s",quantile="0.99"}',
    'ossm_serve_tier_us{tier="exact",window="1m",quantile="0.5"}',
    "ossm_serve_request_us_count",
    # Process gauges are unconditional; ossm_process_ipc is intentionally
    # absent here (it only appears when the PMU grants inherited counters).
    "ossm_process_rss_bytes",
    "ossm_process_uptime_seconds",
    "ossm_process_open_fds",
    "ossm_process_threads",
    "ossm_process_perf_available",
]


def fail(message):
    print(f"check_metrics: {message}", file=sys.stderr)
    sys.exit(1)


def read_framed(reader, verb):
    header = reader.readline().rstrip("\n")
    parts = header.split(" ")
    if len(parts) != 2 or parts[0] != verb or not parts[1].isdigit():
        fail(f"bad {verb} header line: {header!r}")
    return [reader.readline().rstrip("\n") for _ in range(int(parts[1]))]


def validate_exposition(body):
    declared = set()
    samples = {}
    for line in body:
        type_match = TYPE_RE.match(line)
        if type_match:
            name = type_match.group(1)
            if name in declared:
                fail(f"duplicate TYPE declaration for {name}")
            declared.add(name)
            continue
        if line.startswith("#"):
            fail(f"unrecognized comment line: {line!r}")
        sample = SAMPLE_RE.match(line)
        if not sample:
            fail(f"malformed sample line: {line!r}")
        try:
            value = float(sample.group(3))
        except ValueError:
            fail(f"unparseable value in: {line!r}")
        samples[sample.group(1) + (sample.group(2) or "")] = value
    if not declared:
        fail("no TYPE declarations in METRICS body")
    return samples


def main():
    if len(sys.argv) < 2:
        fail("usage: check_metrics.py PORT [HOST]")
    port = int(sys.argv[1])
    host = sys.argv[2] if len(sys.argv) > 2 else "127.0.0.1"

    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(b"METRICS\nSLOWLOG\nQUIT\n")
        reader = sock.makefile("r", encoding="ascii", newline="\n")
        metrics = read_framed(reader, "METRICS")
        slowlog = read_framed(reader, "SLOWLOG")
        bye = reader.readline().rstrip("\n")
        if bye != "BYE":
            fail(f"expected BYE after QUIT, got {bye!r}")

    samples = validate_exposition(metrics)
    for series in REQUIRED_SERIES:
        if series not in samples:
            fail(f"required series missing from METRICS: {series}")
    if samples["ossm_serve_queries_total"] <= 0:
        fail("ossm_serve_queries_total is zero after the query smoke")
    for entry in slowlog:
        if "total_us=" not in entry or "tier=" not in entry:
            fail(f"malformed SLOWLOG entry: {entry!r}")

    print(
        f"check_metrics: OK ({len(metrics)} exposition lines, "
        f"{len(slowlog)} slowlog entries, "
        f"queries_total={samples['ossm_serve_queries_total']:.0f})"
    )


if __name__ == "__main__":
    main()
