#!/usr/bin/env bash
#
# Regenerate the committed benchmark baselines in bench/baselines/.
#
# Every bench binary runs at a reduced workload (seconds, not the paper's
# minutes) and writes its canonical RunReport into the output directory, so
#
#   ./build/tools/bench_compare bench/baselines/BENCH_fig4_speedup.json \
#       BENCH_fig4_speedup.json
#
# can classify a fresh run against the committed reference. Wall-clock
# numbers are machine dependent: regenerate the baselines on the machine
# you intend to compare on. CI gates run-vs-run within a single job and
# only reports (--report-only) against these committed files.
#
# usage: tools/make_baselines.sh [build_dir] [out_dir]

set -euo pipefail

build=${1:-build}
out=${2:-bench/baselines}
mkdir -p "$out"
build_abs=$(cd "$build" && pwd)
out_abs=$(cd "$out" && pwd)

run() {
  local name=$1
  shift
  echo "== $name"
  "$build_abs/bench/$name" "$@" --report="$out_abs/BENCH_$name.json" \
    > /dev/null
}

run fig4_speedup --transactions=8000 --items=300 --repeats=2
run fig5_segmentation_cost --items=300 --repeats=2
run fig6_bubble_list --pages=200 --items=300 --repeats=2
run sec7_dhp --transactions=8000 --items=300 --repeats=2
run pruning --transactions=8000 --items=250 --repeats=3
run ablation_skew --transactions=8000 --items=250 --repeats=2
run ablation_generalized --transactions=8000 --items=250 --repeats=2
run ablation_pagesize --transactions=8000 --items=300 --repeats=2
run ablation_theory --transactions=4000
run kernels --elems=2048
# Smoke scale: --transactions pins the collection instead of auto-sizing it
# to 4x the memory cap (the flagless acceptance run takes minutes).
run storage --transactions=20000 --items=200 --mem-cap-mb=24

# serve_throughput reports under the name "serve", so its baseline keeps
# that filename (BENCH_serve.json) rather than the binary's.
echo "== serve_throughput"
"$build_abs/bench/serve_throughput" --transactions=8000 --items=300 \
  --queries=20000 --report="$out_abs/BENCH_serve.json" > /dev/null

# micro writes BENCH_parallel.json into the working directory. The filter
# matches no google-benchmark case on purpose: the baseline captures the
# thread-count sweep (which always runs), not the microbenchmark tables.
echo "== micro (parallel counting sweep)"
(cd "$out_abs" && "$build_abs/bench/micro" \
  --benchmark_filter=NoSuchBenchmark > /dev/null)

echo
echo "baselines written to $out/:"
ls -1 "$out_abs"
