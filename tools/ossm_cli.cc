// ossm_cli — command-line front end for the library.
//
//   ossm_cli gen     --kind=quest|skewed|alarm --out=FILE [shape flags]
//   ossm_cli build   --data=FILE --out=MAP [--algorithm=... --segments=N ...]
//   ossm_cli mine    --data=FILE [--ossm=MAP] [--miner=...] [--threshold=F]
//   ossm_cli rules   --data=FILE [--threshold=F --confidence=F]
//   ossm_cli inspect --data=FILE | --ossm=MAP
//
// Datasets are FIMI text (one transaction per line) when the path ends in
// .txt, binary otherwise. Run any subcommand with --help for its flags.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "core/ossm_builder.h"
#include "core/ossm_io.h"
#include "core/theory.h"
#include "data/dataset_io.h"
#include "datagen/alarm_generator.h"
#include "datagen/quest_generator.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "mining/association_rules.h"
#include "mining/candidate_pruner.h"
#include "mining/depth_project.h"
#include "mining/dhp.h"
#include "mining/fp_growth.h"
#include "mining/partition.h"

namespace ossm {
namespace {

// ---- flag plumbing ----

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
  std::string GetRequired(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

bool IsTextPath(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".txt") == 0;
}

StatusOr<TransactionDatabase> LoadDataset(const std::string& path) {
  return IsTextPath(path) ? DatasetIo::LoadText(path)
                          : DatasetIo::LoadBinary(path);
}

Status SaveDataset(const TransactionDatabase& db, const std::string& path) {
  return IsTextPath(path) ? DatasetIo::SaveText(db, path)
                          : DatasetIo::SaveBinary(db, path);
}

StatusOr<SegmentationAlgorithm> ParseAlgorithm(const std::string& name) {
  if (name == "random") return SegmentationAlgorithm::kRandom;
  if (name == "rc") return SegmentationAlgorithm::kRc;
  if (name == "greedy") return SegmentationAlgorithm::kGreedy;
  if (name == "random-rc") return SegmentationAlgorithm::kRandomRc;
  if (name == "random-greedy") return SegmentationAlgorithm::kRandomGreedy;
  return Status::InvalidArgument(
      "unknown algorithm '" + name +
      "' (random, rc, greedy, random-rc, random-greedy)");
}

// ---- subcommands ----

int CmdGen(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "gen --kind=quest|skewed|alarm --out=FILE\n"
        "    --items=N --transactions=N --seed=N\n"
        "  quest:  --txn-size=F --pattern-size=F --patterns=N\n"
        "          --corruption=F --seasons=N --boost=F\n"
        "  skewed: --txn-size=F --seasons=N --boost=F\n"
        "  alarm:  --windows=N --rate=F --episodes=N");
    return 0;
  }
  std::string kind = args.GetRequired("kind");
  std::string out = args.GetRequired("out");

  StatusOr<TransactionDatabase> db = Status::Unimplemented("");
  if (kind == "quest") {
    QuestConfig config;
    config.num_items = static_cast<uint32_t>(args.GetInt("items", 400));
    config.num_transactions = args.GetInt("transactions", 20000);
    config.avg_transaction_size =
        args.GetDouble("txn-size", config.num_items / 100.0);
    config.avg_pattern_size = args.GetDouble("pattern-size", 3.0);
    config.num_patterns =
        static_cast<uint32_t>(args.GetInt("patterns", config.num_items));
    config.corruption_mean = args.GetDouble("corruption", 0.25);
    config.num_seasons = static_cast<uint32_t>(args.GetInt("seasons", 1));
    config.in_season_boost = args.GetDouble("boost", 1.0);
    config.seed = args.GetInt("seed", 1);
    db = GenerateQuest(config);
  } else if (kind == "skewed") {
    SkewedConfig config;
    config.num_items = static_cast<uint32_t>(args.GetInt("items", 400));
    config.num_transactions = args.GetInt("transactions", 20000);
    config.avg_transaction_size =
        args.GetDouble("txn-size", config.num_items / 100.0);
    config.num_seasons = static_cast<uint32_t>(args.GetInt("seasons", 2));
    config.in_season_boost = args.GetDouble("boost", 8.0);
    config.seed = args.GetInt("seed", 1);
    db = GenerateSkewed(config);
  } else if (kind == "alarm") {
    AlarmConfig config;
    config.num_alarm_types = static_cast<uint32_t>(args.GetInt("items", 200));
    config.num_windows = args.GetInt("windows", 5000);
    config.background_rate = args.GetDouble("rate", 3.0);
    config.num_episode_kinds =
        static_cast<uint32_t>(args.GetInt("episodes", 25));
    config.seed = args.GetInt("seed", 1);
    db = GenerateAlarms(config);
  } else {
    std::fprintf(stderr, "unknown --kind=%s (quest, skewed, alarm)\n",
                 kind.c_str());
    return 2;
  }
  if (!db.ok()) return Fail(db.status());
  if (Status save = SaveDataset(*db, out); !save.ok()) return Fail(save);
  std::printf("wrote %llu transactions over %u items to %s\n",
              static_cast<unsigned long long>(db->num_transactions()),
              db->num_items(), out.c_str());
  return 0;
}

// Writes a RunReport for a subcommand: workload identity and phase timings
// from the caller, metrics snapshotted from the global registry (collection
// was enabled up front when --report was passed).
int WriteCliReport(obs::RunReport report, const std::string& path) {
  report.metrics = obs::MetricsRegistry::Global().Snapshot();
  if (Status save = obs::SaveRunReportFile(report, path); !save.ok()) {
    return Fail(save);
  }
  std::printf("wrote run report to %s\n", path.c_str());
  return 0;
}

int CmdBuild(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "build --data=FILE --out=MAP\n"
        "      --algorithm=random|rc|greedy|random-rc|random-greedy\n"
        "      --segments=N --page=N --intermediate=N\n"
        "      --bubble=FRACTION --bubble-threshold=F --seed=N\n"
        "      --report=FILE   write a RunReport JSON next to the map");
    return 0;
  }
  if (args.Has("report")) obs::EnableMetricsCollection();
  WallTimer load_timer;
  StatusOr<TransactionDatabase> db = LoadDataset(args.GetRequired("data"));
  if (!db.ok()) return Fail(db.status());
  double load_seconds = load_timer.ElapsedSeconds();

  StatusOr<SegmentationAlgorithm> algorithm =
      ParseAlgorithm(args.Get("algorithm", "random-greedy"));
  if (!algorithm.ok()) return Fail(algorithm.status());

  OssmBuildOptions options;
  options.algorithm = *algorithm;
  options.target_segments = args.GetInt("segments", 40);
  options.transactions_per_page = args.GetInt("page", 100);
  options.intermediate_segments = args.GetInt("intermediate", 200);
  options.bubble_fraction = args.GetDouble("bubble", 0.0);
  options.bubble_threshold = args.GetDouble("bubble-threshold", 0.0025);
  options.seed = args.GetInt("seed", 1);

  StatusOr<OssmBuildResult> build = BuildOssm(*db, options);
  if (!build.ok()) return Fail(build.status());
  std::string out = args.GetRequired("out");
  if (Status save = OssmIo::Save(build->map, out); !save.ok()) {
    return Fail(save);
  }
  std::printf(
      "built %u-segment OSSM (%s) in %.3f s (%llu ossub evals), %.1f KB "
      "-> %s\n",
      build->map.num_segments(),
      std::string(SegmentationAlgorithmName(*algorithm)).c_str(),
      build->stats.seconds,
      static_cast<unsigned long long>(build->stats.ossub_evaluations),
      build->map.MemoryFootprintBytes() / 1024.0, out.c_str());

  if (args.Has("report")) {
    obs::RunReport report = obs::MakeRunReport("ossm_cli.build");
    report.SetWorkload("dataset", args.Get("data", ""));
    report.SetWorkload("segmenter",
                       std::string(SegmentationAlgorithmName(*algorithm)));
    report.SetWorkload("segments", options.target_segments);
    report.SetWorkload("page", options.transactions_per_page);
    report.SetWorkload("seed", options.seed);
    report.AddPhaseSeconds("load", load_seconds);
    report.AddPhaseSeconds("build", build->stats.seconds);
    report.AddValue("ossub_evaluations",
                    static_cast<double>(build->stats.ossub_evaluations));
    report.AddValue("footprint_kb",
                    build->map.MemoryFootprintBytes() / 1024.0);
    return WriteCliReport(std::move(report), args.Get("report", ""));
  }
  return 0;
}

int CmdMine(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "mine --data=FILE [--ossm=MAP]\n"
        "     --miner=apriori|dhp|partition|fpgrowth|depthproject\n"
        "     --threshold=FRACTION --max-level=N --top=N\n"
        "     --report=FILE   write a RunReport JSON (env, workload,\n"
        "                     phases, per-level counters)");
    return 0;
  }
  if (args.Has("report")) obs::EnableMetricsCollection();
  WallTimer load_timer;
  StatusOr<TransactionDatabase> db = LoadDataset(args.GetRequired("data"));
  if (!db.ok()) return Fail(db.status());
  double load_seconds = load_timer.ElapsedSeconds();

  SegmentSupportMap map;
  OssmPruner pruner(&map);
  const CandidatePruner* pruner_ptr = nullptr;
  if (args.Has("ossm")) {
    StatusOr<SegmentSupportMap> loaded = OssmIo::Load(args.Get("ossm", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    map = std::move(*loaded);
    if (map.num_items() != db->num_items()) {
      return Fail(Status::InvalidArgument(
          "OSSM item domain does not match the dataset"));
    }
    pruner_ptr = &pruner;
  }

  double threshold = args.GetDouble("threshold", 0.01);
  uint32_t max_level = static_cast<uint32_t>(args.GetInt("max-level", 0));
  std::string miner = args.Get("miner", "apriori");

  StatusOr<MiningResult> result = Status::Unimplemented("");
  if (miner == "apriori") {
    AprioriConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    config.pruner = pruner_ptr;
    result = MineApriori(*db, config);
  } else if (miner == "dhp") {
    DhpConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    config.pruner = pruner_ptr;
    result = MineDhp(*db, config);
  } else if (miner == "partition") {
    PartitionConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    config.use_ossm = pruner_ptr != nullptr;
    result = MinePartition(*db, config);
  } else if (miner == "fpgrowth") {
    FpGrowthConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    result = MineFpGrowth(*db, config);
  } else if (miner == "depthproject") {
    DepthProjectConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    config.pruner = pruner_ptr;
    result = MineDepthProject(*db, config);
  } else {
    std::fprintf(stderr,
                 "unknown --miner=%s (apriori, dhp, partition, fpgrowth, "
                 "depthproject)\n",
                 miner.c_str());
    return 2;
  }
  if (!result.ok()) return Fail(result.status());

  std::printf(
      "%zu frequent itemsets in %.3f s (%llu candidates counted, %llu "
      "pruned by the OSSM bound)\n",
      result->itemsets.size(), result->stats.total_seconds,
      static_cast<unsigned long long>(
          result->stats.TotalCandidatesCounted()),
      static_cast<unsigned long long>(result->stats.TotalPrunedByBound()));

  uint64_t top = args.GetInt("top", 20);
  uint64_t shown = 0;
  for (const FrequentItemset& f : result->itemsets) {
    if (f.items.size() < 2) continue;
    if (shown++ >= top) break;
    std::printf("  {");
    for (size_t i = 0; i < f.items.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", f.items[i]);
    }
    std::printf("}  support %llu\n",
                static_cast<unsigned long long>(f.support));
  }

  if (args.Has("report")) {
    obs::RunReport report = obs::MakeRunReport("ossm_cli.mine");
    report.SetWorkload("dataset", args.Get("data", ""));
    report.SetWorkload("miner", miner);
    report.SetWorkload("threshold", threshold);
    report.SetWorkload("max_level", static_cast<uint64_t>(max_level));
    report.SetWorkload("ossm",
                       args.Has("ossm") ? args.Get("ossm", "") : "none");
    report.AddPhaseSeconds("load", load_seconds);
    report.AddPhaseSeconds("mine", result->stats.total_seconds);
    report.AddValue("frequent_itemsets",
                    static_cast<double>(result->itemsets.size()));
    report.AddValue(
        "candidates_counted",
        static_cast<double>(result->stats.TotalCandidatesCounted()));
    report.AddValue("pruned_by_bound",
                    static_cast<double>(result->stats.TotalPrunedByBound()));
    return WriteCliReport(std::move(report), args.Get("report", ""));
  }
  return 0;
}

int CmdRules(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "rules --data=FILE [--ossm=MAP] --threshold=F --confidence=F "
        "--top=N");
    return 0;
  }
  StatusOr<TransactionDatabase> db = LoadDataset(args.GetRequired("data"));
  if (!db.ok()) return Fail(db.status());

  AprioriConfig mining;
  mining.min_support_fraction = args.GetDouble("threshold", 0.01);
  SegmentSupportMap map;
  OssmPruner pruner(&map);
  if (args.Has("ossm")) {
    StatusOr<SegmentSupportMap> loaded = OssmIo::Load(args.Get("ossm", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    map = std::move(*loaded);
    mining.pruner = &pruner;
  }
  StatusOr<MiningResult> mined = MineApriori(*db, mining);
  if (!mined.ok()) return Fail(mined.status());

  RuleConfig config;
  config.min_confidence = args.GetDouble("confidence", 0.5);
  StatusOr<std::vector<AssociationRule>> rules =
      GenerateRules(mined->itemsets, db->num_transactions(), config);
  if (!rules.ok()) return Fail(rules.status());

  std::printf("%zu rules at confidence >= %.2f\n", rules->size(),
              config.min_confidence);
  uint64_t top = args.GetInt("top", 20);
  for (size_t r = 0; r < rules->size() && r < top; ++r) {
    const AssociationRule& rule = (*rules)[r];
    std::printf("  {");
    for (size_t i = 0; i < rule.antecedent.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", rule.antecedent[i]);
    }
    std::printf("} => {");
    for (size_t i = 0; i < rule.consequent.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", rule.consequent[i]);
    }
    std::printf("}  conf %.3f  lift %.2f  sup %llu\n", rule.confidence,
                rule.lift, static_cast<unsigned long long>(rule.support));
  }
  return 0;
}

int CmdInspect(const Args& args) {
  if (args.Has("help")) {
    std::puts("inspect --data=FILE | --ossm=MAP");
    return 0;
  }
  if (args.Has("data")) {
    StatusOr<TransactionDatabase> db = LoadDataset(args.Get("data", ""));
    if (!db.ok()) return Fail(db.status());
    std::vector<uint64_t> supports = db->ComputeItemSupports();
    uint64_t max_support = 0;
    uint64_t nonzero = 0;
    for (uint64_t s : supports) {
      max_support = std::max(max_support, s);
      nonzero += s > 0 ? 1 : 0;
    }
    std::printf(
        "dataset: %llu transactions, %u items (%llu occurring), avg "
        "transaction %.2f items, hottest item support %llu\n",
        static_cast<unsigned long long>(db->num_transactions()),
        db->num_items(), static_cast<unsigned long long>(nonzero),
        static_cast<double>(db->total_item_occurrences()) /
            static_cast<double>(db->num_transactions()),
        static_cast<unsigned long long>(max_support));
    std::printf("theoretical exact-OSSM cap (2^m - m): %llu segments\n",
                static_cast<unsigned long long>(
                    ConfigurationSpaceSize(db->num_items())));
    return 0;
  }
  if (args.Has("ossm")) {
    StatusOr<SegmentSupportMap> map = OssmIo::Load(args.Get("ossm", ""));
    if (!map.ok()) return Fail(map.status());
    std::printf("OSSM: %u items x %u segments, %.1f KB\n", map->num_items(),
                map->num_segments(), map->MemoryFootprintBytes() / 1024.0);
    return 0;
  }
  std::fprintf(stderr, "inspect needs --data=FILE or --ossm=MAP\n");
  return 2;
}

int Usage() {
  std::puts(
      "ossm_cli — segment support maps for frequency counting\n"
      "usage: ossm_cli <gen|build|mine|rules|inspect> [--flags]\n"
      "run a subcommand with --help for its flags\n"
      "\n"
      "example session:\n"
      "  ossm_cli gen --kind=quest --seasons=8 --boost=6 --out=d.bin\n"
      "  ossm_cli build --data=d.bin --algorithm=random-greedy \\\n"
      "      --segments=60 --out=d.ossm\n"
      "  ossm_cli mine --data=d.bin --ossm=d.ossm --threshold=0.01\n"
      "  ossm_cli rules --data=d.bin --ossm=d.ossm --confidence=0.7");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "gen") return CmdGen(args);
  if (command == "build") return CmdBuild(args);
  if (command == "mine") return CmdMine(args);
  if (command == "rules") return CmdRules(args);
  if (command == "inspect") return CmdInspect(args);
  return Usage();
}

}  // namespace
}  // namespace ossm

int main(int argc, char** argv) { return ossm::Main(argc, argv); }
