// ossm_cli — command-line front end for the library.
//
//   ossm_cli gen     --kind=quest|skewed|alarm --out=FILE [shape flags]
//   ossm_cli build   --data=FILE --out=MAP [--algorithm=... --segments=N ...]
//   ossm_cli mine    --data=FILE [--ossm=MAP] [--miner=...] [--threshold=F]
//   ossm_cli rules   --data=FILE [--threshold=F --confidence=F]
//   ossm_cli inspect --data=FILE | --ossm=MAP
//   ossm_cli info    [--data=FILE]   (kernel ISA level, bitmap footprint)
//   ossm_cli serve   --data=FILE [--ossm=MAP --threshold=F --port=N ...]
//   ossm_cli query   --port=N [--host=ADDR --check-data=FILE]  (stdin)
//   ossm_cli top     --port=N [--host=ADDR --interval-ms=N ...]  (dashboard)
//
// Datasets are FIMI text (one transaction per line) when the path ends in
// .txt, binary otherwise. Run any subcommand with --help for its flags.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "core/ossm_builder.h"
#include "core/ossm_io.h"
#include "core/theory.h"
#include "data/bitmap_index.h"
#include "data/dataset_io.h"
#include "kernels/kernels.h"
#include "datagen/alarm_generator.h"
#include "datagen/quest_generator.h"
#include "datagen/skewed_generator.h"
#include "mining/apriori.h"
#include "mining/association_rules.h"
#include "mining/candidate_pruner.h"
#include "mining/deduction_rules.h"
#include "mining/depth_project.h"
#include "mining/dhp.h"
#include "mining/eclat.h"
#include "mining/fp_growth.h"
#include "mining/ndi.h"
#include "mining/partition.h"
#include "serve/batcher.h"
#include "storage/storage_env.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/telemetry.h"

namespace ossm {
namespace {

// ---- flag plumbing ----

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
  std::string GetRequired(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

bool IsTextPath(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".txt") == 0;
}

StatusOr<TransactionDatabase> LoadDataset(const std::string& path) {
  return IsTextPath(path) ? DatasetIo::LoadText(path)
                          : DatasetIo::LoadBinary(path);
}

Status SaveDataset(const TransactionDatabase& db, const std::string& path) {
  return IsTextPath(path) ? DatasetIo::SaveText(db, path)
                          : DatasetIo::SaveBinary(db, path);
}

StatusOr<SegmentationAlgorithm> ParseAlgorithm(const std::string& name) {
  if (name == "random") return SegmentationAlgorithm::kRandom;
  if (name == "rc") return SegmentationAlgorithm::kRc;
  if (name == "greedy") return SegmentationAlgorithm::kGreedy;
  if (name == "random-rc") return SegmentationAlgorithm::kRandomRc;
  if (name == "random-greedy") return SegmentationAlgorithm::kRandomGreedy;
  return Status::InvalidArgument(
      "unknown algorithm '" + name +
      "' (random, rc, greedy, random-rc, random-greedy)");
}

// ---- subcommands ----

int CmdGen(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "gen --kind=quest|skewed|alarm --out=FILE\n"
        "    --items=N --transactions=N --seed=N\n"
        "  quest:  --txn-size=F --pattern-size=F --patterns=N\n"
        "          --corruption=F --seasons=N --boost=F\n"
        "  skewed: --txn-size=F --seasons=N --boost=F\n"
        "  alarm:  --windows=N --rate=F --episodes=N");
    return 0;
  }
  std::string kind = args.GetRequired("kind");
  std::string out = args.GetRequired("out");

  StatusOr<TransactionDatabase> db = Status::Unimplemented("");
  if (kind == "quest") {
    QuestConfig config;
    config.num_items = static_cast<uint32_t>(args.GetInt("items", 400));
    config.num_transactions = args.GetInt("transactions", 20000);
    config.avg_transaction_size =
        args.GetDouble("txn-size", config.num_items / 100.0);
    config.avg_pattern_size = args.GetDouble("pattern-size", 3.0);
    config.num_patterns =
        static_cast<uint32_t>(args.GetInt("patterns", config.num_items));
    config.corruption_mean = args.GetDouble("corruption", 0.25);
    config.num_seasons = static_cast<uint32_t>(args.GetInt("seasons", 1));
    config.in_season_boost = args.GetDouble("boost", 1.0);
    config.seed = args.GetInt("seed", 1);
    db = GenerateQuest(config);
  } else if (kind == "skewed") {
    SkewedConfig config;
    config.num_items = static_cast<uint32_t>(args.GetInt("items", 400));
    config.num_transactions = args.GetInt("transactions", 20000);
    config.avg_transaction_size =
        args.GetDouble("txn-size", config.num_items / 100.0);
    config.num_seasons = static_cast<uint32_t>(args.GetInt("seasons", 2));
    config.in_season_boost = args.GetDouble("boost", 8.0);
    config.seed = args.GetInt("seed", 1);
    db = GenerateSkewed(config);
  } else if (kind == "alarm") {
    AlarmConfig config;
    config.num_alarm_types = static_cast<uint32_t>(args.GetInt("items", 200));
    config.num_windows = args.GetInt("windows", 5000);
    config.background_rate = args.GetDouble("rate", 3.0);
    config.num_episode_kinds =
        static_cast<uint32_t>(args.GetInt("episodes", 25));
    config.seed = args.GetInt("seed", 1);
    db = GenerateAlarms(config);
  } else {
    std::fprintf(stderr, "unknown --kind=%s (quest, skewed, alarm)\n",
                 kind.c_str());
    return 2;
  }
  if (!db.ok()) return Fail(db.status());
  if (Status save = SaveDataset(*db, out); !save.ok()) return Fail(save);
  std::printf("wrote %llu transactions over %u items to %s\n",
              static_cast<unsigned long long>(db->num_transactions()),
              db->num_items(), out.c_str());
  return 0;
}

// Writes a RunReport for a subcommand: workload identity and phase timings
// from the caller, metrics snapshotted from the global registry (collection
// was enabled up front when --report was passed).
int WriteCliReport(obs::RunReport report, const std::string& path) {
  report.metrics = obs::MetricsRegistry::Global().Snapshot();
  if (Status save = obs::SaveRunReportFile(report, path); !save.ok()) {
    return Fail(save);
  }
  std::printf("wrote run report to %s\n", path.c_str());
  return 0;
}

int CmdBuild(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "build --data=FILE --out=MAP\n"
        "      --algorithm=random|rc|greedy|random-rc|random-greedy\n"
        "      --segments=N --page=N --intermediate=N\n"
        "      --bubble=FRACTION --bubble-threshold=F --seed=N\n"
        "      --report=FILE   write a RunReport JSON next to the map");
    return 0;
  }
  if (args.Has("report")) obs::EnableMetricsCollection();
  WallTimer load_timer;
  StatusOr<TransactionDatabase> db = LoadDataset(args.GetRequired("data"));
  if (!db.ok()) return Fail(db.status());
  double load_seconds = load_timer.ElapsedSeconds();

  StatusOr<SegmentationAlgorithm> algorithm =
      ParseAlgorithm(args.Get("algorithm", "random-greedy"));
  if (!algorithm.ok()) return Fail(algorithm.status());

  OssmBuildOptions options;
  options.algorithm = *algorithm;
  options.target_segments = args.GetInt("segments", 40);
  options.transactions_per_page = args.GetInt("page", 100);
  options.intermediate_segments = args.GetInt("intermediate", 200);
  options.bubble_fraction = args.GetDouble("bubble", 0.0);
  options.bubble_threshold = args.GetDouble("bubble-threshold", 0.0025);
  options.seed = args.GetInt("seed", 1);

  StatusOr<OssmBuildResult> build = BuildOssm(*db, options);
  if (!build.ok()) return Fail(build.status());
  std::string out = args.GetRequired("out");
  if (Status save = OssmIo::Save(build->map, out); !save.ok()) {
    return Fail(save);
  }
  std::printf(
      "built %u-segment OSSM (%s) in %.3f s (%llu ossub evals), %.1f KB "
      "-> %s\n",
      build->map.num_segments(),
      std::string(SegmentationAlgorithmName(*algorithm)).c_str(),
      build->stats.seconds,
      static_cast<unsigned long long>(build->stats.ossub_evaluations),
      build->map.MemoryFootprintBytes() / 1024.0, out.c_str());

  if (args.Has("report")) {
    obs::RunReport report = obs::MakeRunReport("ossm_cli.build");
    report.SetWorkload("dataset", args.Get("data", ""));
    report.SetWorkload("segmenter",
                       std::string(SegmentationAlgorithmName(*algorithm)));
    report.SetWorkload("segments", options.target_segments);
    report.SetWorkload("page", options.transactions_per_page);
    report.SetWorkload("seed", options.seed);
    report.AddPhaseSeconds("load", load_seconds);
    report.AddPhaseSeconds("build", build->stats.seconds);
    report.AddValue("ossub_evaluations",
                    static_cast<double>(build->stats.ossub_evaluations));
    report.AddValue("footprint_kb",
                    build->map.MemoryFootprintBytes() / 1024.0);
    return WriteCliReport(std::move(report), args.Get("report", ""));
  }
  return 0;
}

int CmdMine(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "mine --data=FILE [--ossm=MAP]\n"
        "     --miner=apriori|dhp|partition|fpgrowth|depthproject|eclat|ndi\n"
        "     --pruner=none|ossm|ndi|combined\n"
        "                     candidate bound source; `ossm` (the default\n"
        "                     with --ossm) uses equation (1) alone, `ndi`\n"
        "                     the deduction rules alone, `combined` fuses\n"
        "                     both (min of the upper bounds + derivation)\n"
        "     --ndi-depth=N   deduction-rule depth limit (0 = unlimited;\n"
        "                     default 3 for --pruner, 0 for --miner=ndi)\n"
        "     --threshold=FRACTION --max-level=N --top=N\n"
        "     --report=FILE   write a RunReport JSON (env, workload,\n"
        "                     phases, per-level counters)\n"
        "  --miner=ndi mines the condensed non-derivable representation\n"
        "  instead of all frequent itemsets.");
    return 0;
  }
  if (args.Has("report")) obs::EnableMetricsCollection();
  WallTimer load_timer;
  StatusOr<TransactionDatabase> db = LoadDataset(args.GetRequired("data"));
  if (!db.ok()) return Fail(db.status());
  double load_seconds = load_timer.ElapsedSeconds();

  SegmentSupportMap map;
  OssmPruner pruner(&map);
  const CandidatePruner* ossm_ptr = nullptr;
  if (args.Has("ossm")) {
    StatusOr<SegmentSupportMap> loaded = OssmIo::Load(args.Get("ossm", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    map = std::move(*loaded);
    if (map.num_items() != db->num_items()) {
      return Fail(Status::InvalidArgument(
          "OSSM item domain does not match the dataset"));
    }
    ossm_ptr = &pruner;
  }

  double threshold = args.GetDouble("threshold", 0.01);
  uint32_t max_level = static_cast<uint32_t>(args.GetInt("max-level", 0));
  std::string miner = args.Get("miner", "apriori");
  uint32_t ndi_depth = static_cast<uint32_t>(args.GetInt("ndi-depth", 3));

  // Resolve the candidate bound source. "combined" and "ndi" wrap the
  // deduction-rule engine (with or without an equation-(1) base) in the
  // interval interface; miners wired for observation feed exact supports
  // back into it as levels complete.
  std::string pruner_kind =
      args.Get("pruner", ossm_ptr != nullptr ? "ossm" : "none");
  CombinedPruner combined(pruner_kind == "combined" ? ossm_ptr : nullptr,
                          db->num_transactions(), ndi_depth);
  const CandidatePruner* pruner_ptr = nullptr;
  if (pruner_kind == "none") {
    pruner_ptr = nullptr;
  } else if (pruner_kind == "ossm") {
    if (ossm_ptr == nullptr) {
      return Fail(Status::InvalidArgument(
          "--pruner=ossm needs an --ossm=MAP to load the bound from"));
    }
    pruner_ptr = ossm_ptr;
  } else if (pruner_kind == "ndi" || pruner_kind == "combined") {
    pruner_ptr = &combined;
  } else {
    std::fprintf(stderr, "unknown --pruner=%s (none, ossm, ndi, combined)\n",
                 pruner_kind.c_str());
    return 2;
  }

  StatusOr<MiningResult> result = Status::Unimplemented("");
  if (miner == "apriori") {
    AprioriConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    config.pruner = pruner_ptr;
    result = MineApriori(*db, config);
  } else if (miner == "dhp") {
    DhpConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    config.pruner = pruner_ptr;
    result = MineDhp(*db, config);
  } else if (miner == "partition") {
    PartitionConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    config.use_ossm = pruner_ptr != nullptr;
    result = MinePartition(*db, config);
  } else if (miner == "fpgrowth") {
    FpGrowthConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    result = MineFpGrowth(*db, config);
  } else if (miner == "depthproject") {
    DepthProjectConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    config.pruner = pruner_ptr;
    result = MineDepthProject(*db, config);
  } else if (miner == "eclat") {
    EclatConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    config.pruner = pruner_ptr;
    result = MineEclat(*db, config);
  } else if (miner == "ndi") {
    NdiConfig config;
    config.min_support_fraction = threshold;
    config.max_level = max_level;
    config.max_depth = static_cast<uint32_t>(args.GetInt("ndi-depth", 0));
    // The NDI miner runs its own deduction rules; the equation-(1) bound
    // (when an --ossm is loaded) rides along as the cheap first filter.
    config.pruner = ossm_ptr;
    result = MineNdi(*db, config);
  } else {
    std::fprintf(stderr,
                 "unknown --miner=%s (apriori, dhp, partition, fpgrowth, "
                 "depthproject, eclat, ndi)\n",
                 miner.c_str());
    return 2;
  }
  if (!result.ok()) return Fail(result.status());

  if (miner == "ndi") {
    std::printf(
        "%zu non-derivable frequent itemsets (condensed representation) in "
        "%.3f s (%llu candidates counted, %llu pruned by bounds, %llu "
        "derivable skipped)\n",
        result->itemsets.size(), result->stats.total_seconds,
        static_cast<unsigned long long>(
            result->stats.TotalCandidatesCounted()),
        static_cast<unsigned long long>(result->stats.TotalPrunedByBound()),
        static_cast<unsigned long long>(
            result->stats.TotalDerivedWithoutCounting()));
  } else {
    std::printf(
        "%zu frequent itemsets in %.3f s (%llu candidates counted, %llu "
        "pruned by bounds, %llu derived without counting)\n",
        result->itemsets.size(), result->stats.total_seconds,
        static_cast<unsigned long long>(
            result->stats.TotalCandidatesCounted()),
        static_cast<unsigned long long>(result->stats.TotalPrunedByBound()),
        static_cast<unsigned long long>(
            result->stats.TotalDerivedWithoutCounting()));
  }

  uint64_t top = args.GetInt("top", 20);
  uint64_t shown = 0;
  for (const FrequentItemset& f : result->itemsets) {
    if (f.items.size() < 2) continue;
    if (shown++ >= top) break;
    std::printf("  {");
    for (size_t i = 0; i < f.items.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", f.items[i]);
    }
    std::printf("}  support %llu\n",
                static_cast<unsigned long long>(f.support));
  }

  if (args.Has("report")) {
    obs::RunReport report = obs::MakeRunReport("ossm_cli.mine");
    report.SetWorkload("dataset", args.Get("data", ""));
    report.SetWorkload("miner", miner);
    report.SetWorkload("pruner", pruner_kind);
    report.SetWorkload("threshold", threshold);
    report.SetWorkload("max_level", static_cast<uint64_t>(max_level));
    report.SetWorkload("ossm",
                       args.Has("ossm") ? args.Get("ossm", "") : "none");
    report.AddPhaseSeconds("load", load_seconds);
    report.AddPhaseSeconds("mine", result->stats.total_seconds);
    report.AddValue("frequent_itemsets",
                    static_cast<double>(result->itemsets.size()));
    report.AddValue(
        "candidates_counted",
        static_cast<double>(result->stats.TotalCandidatesCounted()));
    report.AddValue("pruned_by_bound",
                    static_cast<double>(result->stats.TotalPrunedByBound()));
    report.AddValue(
        "eliminated_by_ossm",
        static_cast<double>(result->stats.TotalEliminatedByOssm()));
    report.AddValue(
        "eliminated_by_ndi",
        static_cast<double>(result->stats.TotalEliminatedByNdi()));
    report.AddValue(
        "derived_without_counting",
        static_cast<double>(result->stats.TotalDerivedWithoutCounting()));
    return WriteCliReport(std::move(report), args.Get("report", ""));
  }
  return 0;
}

int CmdRules(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "rules --data=FILE [--ossm=MAP] --threshold=F --confidence=F "
        "--top=N");
    return 0;
  }
  StatusOr<TransactionDatabase> db = LoadDataset(args.GetRequired("data"));
  if (!db.ok()) return Fail(db.status());

  AprioriConfig mining;
  mining.min_support_fraction = args.GetDouble("threshold", 0.01);
  SegmentSupportMap map;
  OssmPruner pruner(&map);
  if (args.Has("ossm")) {
    StatusOr<SegmentSupportMap> loaded = OssmIo::Load(args.Get("ossm", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    map = std::move(*loaded);
    mining.pruner = &pruner;
  }
  StatusOr<MiningResult> mined = MineApriori(*db, mining);
  if (!mined.ok()) return Fail(mined.status());

  RuleConfig config;
  config.min_confidence = args.GetDouble("confidence", 0.5);
  StatusOr<std::vector<AssociationRule>> rules =
      GenerateRules(mined->itemsets, db->num_transactions(), config);
  if (!rules.ok()) return Fail(rules.status());

  std::printf("%zu rules at confidence >= %.2f\n", rules->size(),
              config.min_confidence);
  uint64_t top = args.GetInt("top", 20);
  for (size_t r = 0; r < rules->size() && r < top; ++r) {
    const AssociationRule& rule = (*rules)[r];
    std::printf("  {");
    for (size_t i = 0; i < rule.antecedent.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", rule.antecedent[i]);
    }
    std::printf("} => {");
    for (size_t i = 0; i < rule.consequent.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", rule.consequent[i]);
    }
    std::printf("}  conf %.3f  lift %.2f  sup %llu\n", rule.confidence,
                rule.lift, static_cast<unsigned long long>(rule.support));
  }
  return 0;
}

int CmdInspect(const Args& args) {
  if (args.Has("help")) {
    std::puts("inspect --data=FILE | --ossm=MAP");
    return 0;
  }
  if (args.Has("data")) {
    StatusOr<TransactionDatabase> db = LoadDataset(args.Get("data", ""));
    if (!db.ok()) return Fail(db.status());
    std::vector<uint64_t> supports = db->ComputeItemSupports();
    uint64_t max_support = 0;
    uint64_t nonzero = 0;
    for (uint64_t s : supports) {
      max_support = std::max(max_support, s);
      nonzero += s > 0 ? 1 : 0;
    }
    std::printf(
        "dataset: %llu transactions, %u items (%llu occurring), avg "
        "transaction %.2f items, hottest item support %llu\n",
        static_cast<unsigned long long>(db->num_transactions()),
        db->num_items(), static_cast<unsigned long long>(nonzero),
        static_cast<double>(db->total_item_occurrences()) /
            static_cast<double>(db->num_transactions()),
        static_cast<unsigned long long>(max_support));
    std::printf("theoretical exact-OSSM cap (2^m - m): %llu segments\n",
                static_cast<unsigned long long>(
                    ConfigurationSpaceSize(db->num_items())));
    return 0;
  }
  if (args.Has("ossm")) {
    StatusOr<SegmentSupportMap> map = OssmIo::Load(args.Get("ossm", ""));
    if (!map.ok()) return Fail(map.status());
    std::printf("OSSM: %u items x %u segments, %.1f KB\n", map->num_items(),
                map->num_segments(), map->MemoryFootprintBytes() / 1024.0);
    return 0;
  }
  std::fprintf(stderr, "inspect needs --data=FILE or --ossm=MAP\n");
  return 2;
}

int CmdInfo(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "info [--data=FILE]\n"
        "prints the dispatched kernel ISA level, the active storage\n"
        "backend, and, with --data, the vertical bitmap index footprint\n"
        "for that dataset's shape plus per-store mapped/resident bytes");
    return 0;
  }
  std::printf("kernel ISA: %s (active)\n",
              std::string(kernels::IsaName(kernels::ActiveIsa())).c_str());
  std::printf("supported levels:");
  for (kernels::Isa isa : kernels::SupportedIsas()) {
    std::printf(" %s", std::string(kernels::IsaName(isa)).c_str());
  }
  std::printf("\noverride with OSSM_SIMD=scalar|avx2|native\n");
  std::printf("storage backend: %s (override with OSSM_STORAGE=heap|mmap)\n",
              storage::BackendName(storage::ActiveBackend()));

  if (args.Has("data")) {
    StatusOr<TransactionDatabase> db = LoadDataset(args.Get("data", ""));
    if (!db.ok()) return Fail(db.status());
    uint64_t bitmap_bytes = BitmapIndex::FootprintBytesFor(
        db->num_items(), db->num_transactions());
    uint64_t csr_bytes =
        db->total_item_occurrences() * sizeof(ItemId) +
        (db->num_transactions() + 1) * sizeof(uint64_t);
    // Mirrors QueryEngine's BitmapMode::kAuto rule.
    bool auto_bitmaps = bitmap_bytes <= 4 * csr_bytes;
    std::printf(
        "dataset: %llu transactions, %u items\n"
        "CSR store: %.1f KB; vertical bitmap index: %.1f KB (%.2fx)\n"
        "serve tier-3 auto mode would use: %s\n",
        static_cast<unsigned long long>(db->num_transactions()),
        db->num_items(), csr_bytes / 1024.0, bitmap_bytes / 1024.0,
        static_cast<double>(bitmap_bytes) /
            static_cast<double>(std::max<uint64_t>(csr_bytes, 1)),
        auto_bitmaps ? "bitmap index" : "CSR scan");
    // Under OSSM_STORAGE=mmap the CSR just loaded lives in a mapped store;
    // show where the bytes actually are (mapped file size vs resident).
    for (const storage::StoreInfo& info : storage::LiveStores()) {
      std::printf(
          "mapped store %s: %.1f KB file (%llu-byte pages), "
          "%.1f KB resident\n",
          info.path.c_str(), info.file_bytes / 1024.0,
          static_cast<unsigned long long>(info.page_size),
          info.resident_bytes / 1024.0);
    }
  }
  return 0;
}

// ---- serving ----

int CmdServe(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "serve --data=FILE [--ossm=MAP]\n"
        "      --threshold=FRACTION   minsup fraction for the bound screen\n"
        "      --bind=ADDR --port=N   0 picks an ephemeral port\n"
        "      --port-file=FILE       write the bound port (for scripts)\n"
        "      --max-batch=N --max-delay-us=N --max-queue=N\n"
        "      --cache-capacity=N --shards=N\n"
        "      --max-connections=N --max-items=N --drain-timeout-ms=N\n"
        "serving telemetry is always on: STATS gains queue_* keys, METRICS\n"
        "returns Prometheus exposition, SLOWLOG the slow-query tail\n"
        "(threshold OSSM_SLOWLOG_US, default 10000).\n"
        "SIGTERM/SIGINT drain in-flight queries, then exit 0.");
    return 0;
  }
  StatusOr<TransactionDatabase> db = LoadDataset(args.GetRequired("data"));
  if (!db.ok()) return Fail(db.status());

  SegmentSupportMap map;
  bool has_map = args.Has("ossm");
  if (has_map) {
    StatusOr<SegmentSupportMap> loaded = OssmIo::Load(args.Get("ossm", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    map = std::move(*loaded);
    if (map.num_items() != db->num_items()) {
      return Fail(Status::InvalidArgument(
          "OSSM item domain does not match the dataset"));
    }
  }

  // One telemetry instance behind the whole stack (engine tiers, batcher
  // queue, server verbs); threshold from OSSM_SLOWLOG_US.
  serve::ServeTelemetry telemetry;

  serve::QueryEngineConfig engine_config;
  double threshold = args.GetDouble("threshold", 0.01);
  engine_config.min_support = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(
             threshold * static_cast<double>(db->num_transactions()))));
  engine_config.cache_capacity = args.GetInt("cache-capacity", 1 << 16);
  engine_config.cache_shards =
      static_cast<uint32_t>(args.GetInt("shards", 16));
  engine_config.telemetry = &telemetry;
  serve::QueryEngine engine(&*db, has_map ? &map : nullptr, engine_config);

  serve::BatcherConfig batcher_config;
  batcher_config.max_batch =
      static_cast<uint32_t>(args.GetInt("max-batch", 64));
  batcher_config.max_delay_us =
      static_cast<uint32_t>(args.GetInt("max-delay-us", 1000));
  batcher_config.max_queue =
      static_cast<uint32_t>(args.GetInt("max-queue", 4096));
  batcher_config.telemetry = &telemetry;
  serve::Batcher batcher(&engine, batcher_config);

  serve::ServerConfig server_config;
  server_config.telemetry = &telemetry;
  server_config.bind_address = args.Get("bind", "127.0.0.1");
  server_config.port = static_cast<uint16_t>(args.GetInt("port", 0));
  server_config.max_connections =
      static_cast<uint32_t>(args.GetInt("max-connections", 256));
  server_config.max_items_per_query =
      static_cast<uint32_t>(args.GetInt("max-items", 256));
  server_config.drain_timeout_ms =
      static_cast<uint32_t>(args.GetInt("drain-timeout-ms", 5000));

  // Block the stop signals before any thread exists so every thread
  // inherits the mask and only the sigwait below ever sees them.
  sigset_t stop_signals;
  sigemptyset(&stop_signals);
  sigaddset(&stop_signals, SIGTERM);
  sigaddset(&stop_signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

  serve::SupportServer server(&engine, &batcher, server_config);
  if (Status started = server.Start(); !started.ok()) return Fail(started);

  if (args.Has("port-file")) {
    FILE* f = std::fopen(args.Get("port-file", "").c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::IOError("cannot write port file"));
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }
  std::printf("serving %s on %s:%u (minsup %llu, %s)\n",
              args.Get("data", "").c_str(),
              server_config.bind_address.c_str(), server.port(),
              static_cast<unsigned long long>(engine.min_support()),
              has_map ? "OSSM screen on" : "no OSSM screen");
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&stop_signals, &signal_number);
  std::printf("received %s, draining\n",
              signal_number == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  server.Shutdown();
  batcher.Shutdown();

  serve::EngineStats stats = engine.Stats();
  std::printf(
      "served %llu queries over %llu connections (%llu bound-rejected, "
      "%llu singleton, %llu cache, %llu exact) in %llu batches\n",
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(server.connections_accepted()),
      static_cast<unsigned long long>(stats.bound_rejects),
      static_cast<unsigned long long>(stats.singleton_hits),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.exact_counts),
      static_cast<unsigned long long>(batcher.batches_dispatched()));
  return 0;
}

// Blocking client-side helpers for `ossm_cli query`.

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool ReadLine(std::string* line) {
    for (;;) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line->assign(buffer_, 0, newline);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

int ConnectTo(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

// Mirrors the server's canonicalization (sort + dedup) so the oracle counts
// exactly what the server counted.
Itemset ParseQueryLine(const std::string& line) {
  Itemset items;
  const char* p = line.c_str();
  while (*p != '\0') {
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0') break;
    char* end = nullptr;
    unsigned long long value = std::strtoull(p, &end, 10);
    if (end == p) return {};  // non-numeric token: let the server ERR it
    items.push_back(static_cast<ItemId>(
        value > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : value));
    p = end;
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

int CmdQuery(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "query --port=N [--host=ADDR] [--check-data=FILE] [--quiet]\n"
        "reads one itemset per line from stdin (FIMI style: '3 17 204'),\n"
        "pipelines them to a running `ossm_cli serve`, and prints each\n"
        "response. With --check-data, recounts every answer against the\n"
        "dataset and exits 1 on any mismatch.");
    return 0;
  }
  uint16_t port = static_cast<uint16_t>(args.GetInt("port", 0));
  if (port == 0) {
    std::fprintf(stderr, "query needs --port=N\n");
    return 2;
  }
  std::string host = args.Get("host", "127.0.0.1");
  bool quiet = args.Has("quiet");

  std::vector<std::string> query_lines;
  char buffer[1 << 16];
  while (std::fgets(buffer, sizeof(buffer), stdin) != nullptr) {
    std::string line(buffer);
    while (!line.empty() &&
           (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.find_first_not_of(" \t") != std::string::npos) {
      query_lines.push_back(line);
    }
  }

  TransactionDatabase oracle_db(0);
  bool check = args.Has("check-data");
  if (check) {
    StatusOr<TransactionDatabase> loaded =
        LoadDataset(args.Get("check-data", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    oracle_db = std::move(*loaded);
  }

  int fd = ConnectTo(host, port);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s:%u\n", host.c_str(), port);
    return 1;
  }
  LineReader reader(fd);

  // INFO first: the oracle needs the server's minsup to judge rejects.
  std::string response;
  uint64_t minsup = 0;
  if (!WriteAll(fd, "INFO\n") || !reader.ReadLine(&response) ||
      response.rfind("INFO ", 0) != 0) {
    std::fprintf(stderr, "bad INFO handshake\n");
    ::close(fd);
    return 1;
  }
  size_t minsup_at = response.find("minsup=");
  if (minsup_at != std::string::npos) {
    minsup = std::strtoull(response.c_str() + minsup_at + 7, nullptr, 10);
  }
  if (!quiet) std::printf("%s\n", response.c_str());

  std::string payload;
  for (const std::string& line : query_lines) {
    payload += "Q ";
    payload += line;
    payload += '\n';
  }
  payload += "QUIT\n";
  if (!WriteAll(fd, payload)) {
    std::fprintf(stderr, "write to server failed\n");
    ::close(fd);
    return 1;
  }

  uint64_t mismatches = 0;
  uint64_t answered = 0;
  for (const std::string& line : query_lines) {
    if (!reader.ReadLine(&response)) {
      std::fprintf(stderr, "server closed with %zu of %zu answers pending\n",
                   query_lines.size() - answered, query_lines.size());
      ::close(fd);
      return 1;
    }
    ++answered;
    if (!quiet) std::printf("%s -> %s\n", line.c_str(), response.c_str());

    if (!check) continue;
    Itemset itemset = ParseQueryLine(line);
    bool valid = !itemset.empty() &&
                 itemset.back() < oracle_db.num_items();
    if (!valid) {
      if (response.rfind("ERR", 0) != 0) {
        std::fprintf(stderr, "MISMATCH '%s': expected ERR, got '%s'\n",
                     line.c_str(), response.c_str());
        ++mismatches;
      }
      continue;
    }
    uint64_t exact = 0;
    for (uint64_t t = 0; t < oracle_db.num_transactions(); ++t) {
      if (oracle_db.Contains(t, itemset)) ++exact;
    }
    if (response.rfind("OK ", 0) == 0) {
      uint64_t support = std::strtoull(response.c_str() + 3, nullptr, 10);
      if (support != exact) {
        std::fprintf(stderr, "MISMATCH '%s': served %llu, exact %llu\n",
                     line.c_str(), static_cast<unsigned long long>(support),
                     static_cast<unsigned long long>(exact));
        ++mismatches;
      }
    } else if (response.rfind("RJ ", 0) == 0) {
      uint64_t bound = std::strtoull(response.c_str() + 3, nullptr, 10);
      // A reject is correct iff the bound is below minsup and really
      // bounds the exact support.
      if (bound >= minsup || exact > bound) {
        std::fprintf(stderr,
                     "MISMATCH '%s': RJ bound %llu vs exact %llu "
                     "(minsup %llu)\n",
                     line.c_str(), static_cast<unsigned long long>(bound),
                     static_cast<unsigned long long>(exact),
                     static_cast<unsigned long long>(minsup));
        ++mismatches;
      }
    } else {
      std::fprintf(stderr, "MISMATCH '%s': unexpected '%s'\n", line.c_str(),
                   response.c_str());
      ++mismatches;
    }
  }
  bool got_bye = reader.ReadLine(&response) && response == "BYE";
  ::close(fd);
  if (!got_bye) {
    std::fprintf(stderr, "missing BYE after %zu answers\n",
                 query_lines.size());
    return 1;
  }
  if (check) {
    std::printf("checked %zu queries against the oracle: %llu mismatches\n",
                query_lines.size(),
                static_cast<unsigned long long>(mismatches));
    if (mismatches > 0) return 1;
  }
  return 0;
}

// ---- `top`: live serving dashboard over STATS / METRICS / SLOWLOG ----

// One Prometheus exposition sample: everything before the last space is the
// series key (metric name plus its label block), the remainder the value.
void ParseMetricLine(const std::string& line,
                     std::map<std::string, double>& series) {
  if (line.empty() || line[0] == '#') return;
  size_t space = line.rfind(' ');
  if (space == std::string::npos || space + 1 >= line.size()) return;
  series[line.substr(0, space)] =
      std::strtod(line.c_str() + space + 1, nullptr);
}

double Series(const std::map<std::string, double>& series,
              const std::string& key) {
  auto it = series.find(key);
  return it == series.end() ? 0.0 : it->second;
}

// The three windowed quantiles of one summary family as table cells.
std::vector<std::string> QuantileCells(
    const std::map<std::string, double>& series, const std::string& name,
    const std::string& labels) {
  std::vector<std::string> cells;
  for (const char* q : {"0.5", "0.95", "0.99"}) {
    cells.push_back(TablePrinter::FormatDouble(Series(
        series,
        name + "{" + labels + "window=\"10s\",quantile=\"" + q + "\"}")));
  }
  return cells;
}

int CmdTop(const Args& args) {
  if (args.Has("help")) {
    std::puts(
        "top --port=N [--host=ADDR] [--interval-ms=N] [--iterations=N]\n"
        "    [--slowlog=N] [--no-clear]\n"
        "polls a running `ossm_cli serve` over STATS/METRICS/SLOWLOG and\n"
        "renders a refreshing dashboard: qps, per-tier latency percentiles\n"
        "over the last 10s, cache hit ratio, queue depth, process RSS/IPC,\n"
        "and the slow-query tail. A dropped connection is retried with\n"
        "bounded backoff (5 attempts, 250ms doubling to 4s) before giving\n"
        "up. --iterations=N draws N frames and exits (0 = forever);\n"
        "--no-clear appends frames instead of redrawing (for logs/CI).");
    return 0;
  }
  uint16_t port = static_cast<uint16_t>(args.GetInt("port", 0));
  if (port == 0) {
    std::fprintf(stderr, "top needs --port=N\n");
    return 2;
  }
  std::string host = args.Get("host", "127.0.0.1");
  int64_t interval_ms = args.GetInt("interval-ms", 1000);
  int64_t iterations = args.GetInt("iterations", 0);
  int64_t slowlog_rows = std::max<int64_t>(0, args.GetInt("slowlog", 5));
  bool no_clear = args.Has("no-clear");

  int fd = -1;
  std::unique_ptr<LineReader> reader;  // rebuilt on every (re)connect

  // A monitoring session should survive a server restart: every connect —
  // initial or after a drop — gets a bounded exponential backoff (5
  // attempts, 250ms doubling, 4s cap) before `top` gives up for good.
  constexpr int kConnectAttempts = 5;
  auto connect_with_backoff = [&]() {
    int64_t delay_ms = 250;
    for (int attempt = 1; attempt <= kConnectAttempts; ++attempt) {
      fd = ConnectTo(host, port);
      if (fd >= 0) {
        reader = std::make_unique<LineReader>(fd);
        return true;
      }
      if (attempt < kConnectAttempts) {
        std::fprintf(stderr,
                     "cannot connect to %s:%u (attempt %d/%d), retrying in "
                     "%lld ms\n",
                     host.c_str(), port, attempt, kConnectAttempts,
                     static_cast<long long>(delay_ms));
        ::usleep(static_cast<useconds_t>(delay_ms) * 1000);
        delay_ms = std::min<int64_t>(delay_ms * 2, 4000);
      }
    }
    std::fprintf(stderr, "cannot connect to %s:%u after %d attempts\n",
                 host.c_str(), port, kConnectAttempts);
    return false;
  };
  auto drop_connection = [&]() {
    if (fd >= 0) ::close(fd);
    fd = -1;
    reader.reset();
  };

  if (!connect_with_backoff()) return 1;

  for (int64_t frame = 0; iterations == 0 || frame < iterations; ++frame) {
    if (frame > 0 && interval_ms > 0) {
      ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
    }

    std::map<std::string, std::string> stats;
    std::map<std::string, double> series;
    std::vector<std::string> slow;

    // One STATS/METRICS/SLOWLOG round trip. Any short read or malformed
    // frame means the connection is unusable (mid-body desync cannot be
    // resynchronized on a pipelined stream), so the caller reconnects.
    auto poll_frame = [&]() {
      stats.clear();
      series.clear();
      slow.clear();
      std::string payload =
          "STATS\nMETRICS\nSLOWLOG " + std::to_string(slowlog_rows) + "\n";
      std::string line;
      if (!WriteAll(fd, payload) || !reader->ReadLine(&line) ||
          line.rfind("STATS ", 0) != 0) {
        return false;
      }
      {
        std::istringstream tokens(line.substr(6));
        std::string token;
        while (tokens >> token) {
          size_t eq = token.find('=');
          if (eq != std::string::npos) {
            stats[token.substr(0, eq)] = token.substr(eq + 1);
          }
        }
      }
      if (!reader->ReadLine(&line) || line.rfind("METRICS ", 0) != 0) {
        return false;
      }
      uint64_t metric_lines = std::strtoull(line.c_str() + 8, nullptr, 10);
      for (uint64_t i = 0; i < metric_lines; ++i) {
        if (!reader->ReadLine(&line)) return false;
        ParseMetricLine(line, series);
      }
      if (!reader->ReadLine(&line) || line.rfind("SLOWLOG", 0) != 0) {
        return false;
      }
      uint64_t slow_lines =
          line.size() > 8 ? std::strtoull(line.c_str() + 8, nullptr, 10) : 0;
      for (uint64_t i = 0; i < slow_lines; ++i) {
        if (!reader->ReadLine(&line)) return false;
        slow.push_back(line);
      }
      return true;
    };

    bool polled = false;
    for (int attempt = 0; attempt < 2 && !polled; ++attempt) {
      if (fd < 0 && !connect_with_backoff()) return 1;
      polled = poll_frame();
      if (!polled) {
        std::fprintf(stderr, "lost server at %s:%u; reconnecting\n",
                     host.c_str(), port);
        drop_connection();
      }
    }
    if (!polled) return 1;

    std::ostringstream screen;
    if (!no_clear) screen << "\x1b[2J\x1b[H";
    char head[256];
    std::snprintf(head, sizeof(head),
                  "ossm top — %s:%u   qps 10s/1m: %s / %s   "
                  "cache hit 10s: %.0f%%   queue depth: %llu\n",
                  host.c_str(), port,
                  TablePrinter::FormatDouble(
                      Series(series, "ossm_serve_qps_10s")).c_str(),
                  TablePrinter::FormatDouble(
                      Series(series, "ossm_serve_qps_1m")).c_str(),
                  Series(series, "ossm_serve_cache_hit_ratio_10s") * 100.0,
                  static_cast<unsigned long long>(
                      Series(series, "ossm_serve_queue_depth")));
    // Process resources ride along in the same METRICS scrape. IPC is a
    // delta between scrapes and only exported when the PMU grants
    // inherited counters, so it reads "n/a" in containers.
    char resources[192];
    double rss_mb =
        Series(series, "ossm_process_rss_bytes") / (1024.0 * 1024.0);
    bool perf_on = Series(series, "ossm_process_perf_available") > 0.0;
    if (perf_on && series.count("ossm_process_ipc") > 0) {
      std::snprintf(resources, sizeof(resources),
                    "process: rss %.1f MB   ipc %.2f   threads %llu\n",
                    rss_mb, Series(series, "ossm_process_ipc"),
                    static_cast<unsigned long long>(
                        Series(series, "ossm_process_threads")));
    } else {
      std::snprintf(resources, sizeof(resources),
                    "process: rss %.1f MB   ipc n/a (perf counters "
                    "unavailable)   threads %llu\n",
                    rss_mb,
                    static_cast<unsigned long long>(
                        Series(series, "ossm_process_threads")));
    }
    screen << head << resources
           << "totals: queries=" << stats["queries"]
           << " batches=" << stats["batches"]
           << " coalesced=" << stats["coalesced"]
           << " backpressure=" << stats["backpressure"]
           << " cache_size=" << stats["cache_size"] << "\n\n";

    TablePrinter table({"lane", "p50 us (10s)", "p95 us (10s)",
                        "p99 us (10s)", "count (1m)"});
    auto add_summary = [&](const std::string& lane, const std::string& name,
                           const std::string& labels) {
      std::vector<std::string> row{lane};
      for (std::string& cell : QuantileCells(series, name, labels)) {
        row.push_back(std::move(cell));
      }
      const std::string count_key =
          labels.empty() ? name + "_count"
                         : name + "_count{" +
                               labels.substr(0, labels.size() - 1) + "}";
      row.push_back(TablePrinter::FormatCount(
          static_cast<uint64_t>(Series(series, count_key))));
      table.AddRow(std::move(row));
    };
    add_summary("request", "ossm_serve_request_us", "");
    add_summary("queue wait", "ossm_serve_queue_wait_us", "");
    for (const char* tier : {"reject", "singleton", "cache", "exact"}) {
      add_summary(std::string("tier:") + tier, "ossm_serve_tier_us",
                  "tier=\"" + std::string(tier) + "\",");
    }
    table.Print(screen);

    screen << "\nslow queries (newest first, total "
           << TablePrinter::FormatCount(static_cast<uint64_t>(
                  Series(series, "ossm_serve_slowlog_entries_total")))
           << "):\n";
    if (slow.empty()) {
      screen << "  (none)\n";
    } else {
      for (const std::string& entry : slow) screen << "  " << entry << "\n";
    }

    std::fputs(screen.str().c_str(), stdout);
    std::fflush(stdout);
  }
  if (fd >= 0) {
    WriteAll(fd, "QUIT\n");  // best-effort goodbye; server closes after BYE
    ::close(fd);
  }
  return 0;
}

int Usage() {
  std::puts(
      "ossm_cli — segment support maps for frequency counting\n"
      "usage: ossm_cli <gen|build|mine|rules|inspect|info|serve|query|top> "
      "[--flags]\n"
      "run a subcommand with --help for its flags\n"
      "\n"
      "example session:\n"
      "  ossm_cli gen --kind=quest --seasons=8 --boost=6 --out=d.bin\n"
      "  ossm_cli build --data=d.bin --algorithm=random-greedy \\\n"
      "      --segments=60 --out=d.ossm\n"
      "  ossm_cli mine --data=d.bin --ossm=d.ossm --threshold=0.01\n"
      "  ossm_cli rules --data=d.bin --ossm=d.ossm --confidence=0.7");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "gen") return CmdGen(args);
  if (command == "build") return CmdBuild(args);
  if (command == "mine") return CmdMine(args);
  if (command == "rules") return CmdRules(args);
  if (command == "inspect") return CmdInspect(args);
  if (command == "info") return CmdInfo(args);
  if (command == "serve") return CmdServe(args);
  if (command == "query") return CmdQuery(args);
  if (command == "top") return CmdTop(args);
  return Usage();
}

}  // namespace
}  // namespace ossm

int main(int argc, char** argv) { return ossm::Main(argc, argv); }
